//! JSONL event sink: one JSON object per line, append-only.
//!
//! The run-log convention every experiment binary follows (see
//! DESIGN.md §5b):
//!
//! 1. the first line is a **manifest** — `{"type":"manifest", ...}`
//!    with the run configuration (dataset, ranker, seed, thread count,
//!    step/episode counts);
//! 2. every later line is an **event** — `{"type":"step", ...}` per
//!    trainer step (or `"observation"`, `"metrics"`, ... for other
//!    event shapes), carrying whatever fields that event type needs.
//!
//! The sink is `Sync`: a `Mutex` serializes whole lines, so concurrent
//! experiment cells can share one file without interleaving bytes.
//! Every line is flushed as written — a crashed run still leaves a
//! readable prefix, which is what the CI validator relies on.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::json::Json;
use crate::metrics;

/// A thread-safe JSON-lines file writer.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Self {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Appends one value as a single line and flushes it.
    pub fn emit(&self, line: &Json) -> io::Result<()> {
        let mut out = self.out.lock().unwrap();
        out.write_all(line.render().as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        metrics::counter("telemetry_lines_total").inc();
        Ok(())
    }

    /// [`JsonlSink::emit`] of a `{"type":"metrics", "metrics": ...}`
    /// line holding a snapshot of the global registry — the
    /// conventional final line of a run log.
    pub fn emit_metrics_snapshot(&self) -> io::Result<()> {
        let line = Json::obj()
            .field("type", "metrics")
            .field("metrics", metrics::snapshot().to_json());
        self.emit(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "telemetry-sink-{}-{name}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn lines_round_trip_through_file() {
        let path = temp_path("roundtrip");
        let sink = JsonlSink::create(&path).expect("create");
        sink.emit(&Json::obj().field("type", "manifest").field("seed", 7u64))
            .expect("emit");
        sink.emit(&Json::obj().field("type", "step").field("step", 0usize))
            .expect("emit");
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let manifest = json::parse(lines[0]).expect("line 0 parses");
        assert_eq!(
            manifest.get("type").and_then(Json::as_str),
            Some("manifest")
        );
        let step = json::parse(lines[1]).expect("line 1 parses");
        assert_eq!(step.get("step").and_then(Json::as_u64), Some(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_emitters_never_interleave_bytes() {
        let path = temp_path("concurrent");
        let sink = JsonlSink::create(&path).expect("create");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        sink.emit(
                            &Json::obj()
                                .field("type", "event")
                                .field("thread", t)
                                .field("i", i)
                                .field("pad", "x".repeat(200)),
                        )
                        .expect("emit");
                    }
                });
            }
        });
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 200);
        for line in lines {
            json::parse(line).expect("every line is one valid document");
        }
        std::fs::remove_file(&path).ok();
    }
}
