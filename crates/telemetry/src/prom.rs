//! Prometheus text exposition (version 0.0.4) for the cumulative
//! registry plus the streaming plane.
//!
//! The renderer groups every sample line under its *final* metric name
//! and emits exactly one `# TYPE` line per name. That matters because
//! the two layers can legally meet at one name: the cumulative counter
//! `serve_requests_total` and the labeled family `serve_requests`
//! (whose series render as `serve_requests_total{route=...}`) coexist
//! as one counter with and without labels — valid Prometheus, but only
//! if the TYPE header appears once.
//!
//! Shapes emitted:
//!
//! * cumulative counter `name` → `name <v>` (counter)
//! * cumulative gauge `name` → `name <v>` (gauge)
//! * cumulative histogram `name` → classic `name_bucket{le=...}` with
//!   *cumulative* bucket counts, `+Inf`, `name_sum`, `name_count`,
//!   plus `name_nan_total` (quarantined NaN samples)
//! * windowed counter `name` → `name_rate{window="S"}` gauge,
//!   `name_window_count{window="S"}` gauge, `name_stale_total` counter
//! * windowed histogram `name` → `name_window{window="S",quantile=q}`
//!   gauges for p50/p95/p99, `name_window_count`, `name_rate`,
//!   `name_stale_total`, `name_nan_total`
//! * counter family `name` → `name_total{labels}` counters,
//!   `name_rate{labels,window="S"}` gauges, `name_overflow_total`
//! * drift detector `name` → `name{stat=...}` gauges (mean, dev,
//!   s_pos, s_neg), `name_alarms_total` counter, `name_drift` 0/1 gauge

use std::collections::BTreeMap;

use crate::metrics::{MetricValue, Snapshot};
use crate::stream::{StreamSnapshot, WindowView};

/// Render both layers as Prometheus text exposition.
pub fn render(cumulative: &Snapshot, stream: &StreamSnapshot) -> String {
    let mut out = Exposition::default();

    for (name, value) in &cumulative.entries {
        match value {
            MetricValue::Counter(v) => {
                out.sample(name, "counter", format!("{name} {v}"));
            }
            MetricValue::Gauge(v) => {
                out.sample(name, "gauge", format!("{name} {v}"));
            }
            MetricValue::Histogram {
                count,
                nan_count,
                sum,
                buckets,
            } => {
                let mut cum = 0u64;
                for &(le, n) in buckets {
                    cum += n;
                    out.sample(
                        name,
                        "histogram",
                        format!("{name}_bucket{{le=\"{}\"}} {cum}", fmt_le(le)),
                    );
                }
                out.sample(name, "histogram", format!("{name}_sum {}", fmt_f64(*sum)));
                out.sample(name, "histogram", format!("{name}_count {count}"));
                let nan_name = format!("{name}_nan_total");
                out.sample(&nan_name, "counter", format!("{nan_name} {nan_count}"));
            }
        }
    }

    for c in &stream.counters {
        let name = c.name;
        window_counter_samples(&mut out, name, &c.view);
        let stale = format!("{name}_stale_total");
        out.sample(&stale, "counter", format!("{stale} {}", c.stale_records));
    }

    for h in &stream.histograms {
        let name = h.name;
        let w = fmt_f64(h.view.window_secs);
        let qname = format!("{name}_window");
        for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            if let Some(v) = h.view.quantile(q) {
                out.sample(
                    &qname,
                    "gauge",
                    format!(
                        "{qname}{{window=\"{w}\",quantile=\"{label}\"}} {}",
                        fmt_f64(v)
                    ),
                );
            }
        }
        window_counter_samples(&mut out, name, &h.view);
        let stale = format!("{name}_stale_total");
        out.sample(&stale, "counter", format!("{stale} {}", h.stale_records));
        let nan = format!("{name}_nan_total");
        out.sample(&nan, "counter", format!("{nan} {}", h.nan_count));
    }

    for f in &stream.families {
        let total_name = format!("{}_total", f.name);
        let rate_name = format!("{}_rate", f.name);
        for (values, total, view) in &f.series {
            let labels: Vec<String> = f
                .label_names
                .iter()
                .zip(values.iter())
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                .collect();
            out.sample(
                &total_name,
                "counter",
                format!("{total_name}{{{}}} {total}", labels.join(",")),
            );
            let mut rate_labels = labels.clone();
            rate_labels.push(format!("window=\"{}\"", fmt_f64(view.window_secs)));
            out.sample(
                &rate_name,
                "gauge",
                format!(
                    "{rate_name}{{{}}} {}",
                    rate_labels.join(","),
                    fmt_f64(view.rate())
                ),
            );
        }
        let overflow = format!("{}_overflow_total", f.name);
        out.sample(
            &overflow,
            "counter",
            format!("{overflow} {}", f.overflow_events),
        );
    }

    for d in &stream.detectors {
        let name = d.name;
        for (stat, v) in [
            ("mean", d.state.mean),
            ("dev", d.state.dev),
            ("s_pos", d.state.s_pos),
            ("s_neg", d.state.s_neg),
        ] {
            out.sample(
                name,
                "gauge",
                format!("{name}{{stat=\"{stat}\"}} {}", fmt_f64(v)),
            );
        }
        let obs = format!("{name}_observations_total");
        out.sample(&obs, "counter", format!("{obs} {}", d.state.observations));
        let alarms = format!("{name}_alarms_total");
        out.sample(&alarms, "counter", format!("{alarms} {}", d.state.alarms));
        let drift = format!("{name}_drift");
        out.sample(
            &drift,
            "gauge",
            format!("{drift} {}", if d.state.drifted { 1 } else { 0 }),
        );
    }

    out.finish()
}

fn window_counter_samples(out: &mut Exposition, name: &str, view: &WindowView) {
    let w = fmt_f64(view.window_secs);
    let rate = format!("{name}_rate");
    out.sample(
        &rate,
        "gauge",
        format!("{rate}{{window=\"{w}\"}} {}", fmt_f64(view.rate())),
    );
    let count = format!("{name}_window_count");
    out.sample(
        &count,
        "gauge",
        format!("{count}{{window=\"{w}\"}} {}", view.count),
    );
}

/// Accumulates sample lines grouped by final metric name, one `# TYPE`
/// per name, names in sorted order for deterministic output.
#[derive(Default)]
struct Exposition {
    groups: BTreeMap<String, (&'static str, Vec<String>)>,
}

impl Exposition {
    fn sample(&mut self, name: &str, kind: &'static str, line: String) {
        let entry = self
            .groups
            .entry(name.to_string())
            .or_insert_with(|| (kind, Vec::new()));
        // First registration wins the TYPE; in practice kinds agree
        // (the only designed collision is counter-with-counter).
        entry.1.push(line);
    }

    fn finish(self) -> String {
        let mut s = String::new();
        for (name, (kind, lines)) in self.groups {
            s.push_str("# TYPE ");
            s.push_str(&name);
            s.push(' ');
            s.push_str(kind);
            s.push('\n');
            for line in lines {
                s.push_str(&line);
                s.push('\n');
            }
        }
        s
    }
}

/// `le` label value: finite bounds via the shared float format, the
/// overflow bucket as Prometheus' canonical `+Inf`.
fn fmt_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".to_string()
    } else {
        fmt_f64(le)
    }
}

/// Deterministic float formatting: Rust's shortest-roundtrip `{}`.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            _ => s.push(c),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::stream::{CusumConfig, StreamRegistry, WindowSpec, DEFAULT_WINDOW};

    #[test]
    fn counter_and_family_share_one_type_line() {
        let reg = Registry::new();
        reg.counter("serve_requests_total").add(7);
        let sreg = StreamRegistry::new();
        let fam = sreg.counter_family("serve_requests", &["route"], WindowSpec::new(1000, 4), 8);
        fam.add(&["healthz"], 2);
        let text = render(&reg.snapshot(), &sreg.snapshot(None));
        let type_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE serve_requests_total "))
            .collect();
        assert_eq!(type_lines, ["# TYPE serve_requests_total counter"]);
        assert!(text.contains("serve_requests_total 7\n"));
        assert!(text.contains("serve_requests_total{route=\"healthz\"} 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 2.0]);
        h.record(0.5);
        h.record(1.5);
        h.record(9.0);
        let text = render(&reg.snapshot(), &StreamSnapshot::default());
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_sum 11\n"));
        assert!(text.contains("lat_count 3\n"));
    }

    #[test]
    fn detector_states_render_as_stat_gauges() {
        let sreg = StreamRegistry::new();
        let d = sreg.detector("drift", CusumConfig::default());
        d.observe(1.0);
        d.observe(2.0);
        let text = render(&Snapshot::default(), &sreg.snapshot(None));
        assert!(text.contains("# TYPE drift gauge"));
        assert!(text.contains("drift{stat=\"mean\"}"));
        assert!(text.contains("drift_observations_total 2\n"));
        assert!(text.contains("drift_alarms_total 0\n"));
        assert!(text.contains("drift_drift 0\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn windowed_counter_renders_rate_and_stale() {
        let sreg = StreamRegistry::new();
        let c = sreg.windowed_counter("events", DEFAULT_WINDOW);
        c.add_at(0, 30);
        let text = render(&Snapshot::default(), &sreg.snapshot(None));
        assert!(text.contains("# TYPE events_rate gauge"));
        assert!(text.contains("events_rate{window=\"60\"} 0.5\n"));
        assert!(text.contains("events_window_count{window=\"60\"} 30\n"));
        assert!(text.contains("events_stale_total 0\n"));
    }
}
