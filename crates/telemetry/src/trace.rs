//! Hierarchical tracing: thread-local ring buffers of begin/end span
//! events, drained into **Chrome Trace Event Format** JSON.
//!
//! ## Model
//!
//! * One process-wide atomic **enable flag** ([`enable`]/[`disable`]).
//!   With tracing off, [`span`] is a relaxed load plus a branch and
//!   returns an inert guard — cheap enough to leave in per-op hot
//!   paths (the <5% disabled-overhead budget in DESIGN.md §5d).
//! * Each thread owns a fixed-capacity **ring buffer** of
//!   [`TraceEvent`]s. The owning thread is the only writer, so pushes
//!   are wait-free: a slot write plus two release stores. Rings are
//!   registered globally on first use and outlive their thread.
//! * A [`TraceSpan`] guard records a `Begin` event on construction and
//!   the matching `End` on drop. Span ids are process-unique; a
//!   thread-local stack supplies the parent id, so nesting is captured
//!   without any coordination.
//! * [`TraceCollector::collect`] snapshots every ring (per-slot
//!   sequence numbers double as a seqlock so a reader never trusts a
//!   slot that wrapped mid-read), discards unmatched begin/end halves
//!   (ring wrap-around drops oldest events first, so the survivors
//!   stay properly nested), and [`TraceSnapshot::to_chrome_json`]
//!   renders the result as `{"traceEvents": [...]}` — loadable in
//!   Perfetto or `chrome://tracing`, validated by
//!   [`validate_chrome`] in CI.
//!
//! Timestamps come from one process-wide monotonic epoch
//! ([`std::time::Instant`]), exported in microseconds as the Chrome
//! format requires. Tracing never touches any RNG: enabling it cannot
//! perturb a single sampled trajectory or reward.
//!
//! For exact results, collect (and [`reset`]) at quiescence — between
//! batches or after a run — not while traced threads are mid-push.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Default per-thread ring capacity (events, not spans; a span is two
/// events). Exposed so tests can size rings to provoke wrap-around.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Begin/end marker of one [`TraceEvent`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    Begin,
    End,
}

/// One record in a thread's ring buffer.
#[derive(Copy, Clone, Debug)]
pub struct TraceEvent {
    /// Span name (`"sample"`, `"retrain"`, ...). `&'static` keeps the
    /// record `Copy` and the push allocation-free.
    pub name: &'static str,
    /// Category (`"trainer"`, `"system"`, `"runtime"`).
    pub cat: &'static str,
    pub phase: Phase,
    /// Nanoseconds since the process trace epoch (monotonic).
    pub ts_ns: u64,
    /// Process-unique span id; the begin and end halves share it.
    pub span: u64,
    /// Enclosing span's id, `0` for root spans.
    pub parent: u64,
    /// Track (≈ thread) id the event was recorded on.
    pub track: u32,
}

const EMPTY_EVENT: TraceEvent = TraceEvent {
    name: "",
    cat: "",
    phase: Phase::Begin,
    ts_ns: 0,
    span: 0,
    parent: 0,
    track: 0,
};

/// One slot of a ring: the sequence number (write ordinal, 1-based;
/// `0` = empty or mid-write) doubles as a seqlock for readers.
struct Slot {
    seq: AtomicU64,
    event: UnsafeCell<TraceEvent>,
}

/// A single-writer ring buffer owned by one thread. Readers
/// ([`TraceCollector`]) validate each slot's sequence number before and
/// after copying, so a concurrent wrap is detected and the slot
/// skipped rather than returned torn.
struct Ring {
    track: u32,
    thread_name: String,
    /// Total events ever pushed by the owner.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: `event` cells are written only by the owning thread;
// concurrent readers copy the payload between two Acquire loads of
// `seq` and discard the copy unless both loads agree, so a torn read
// is never *used*. Collection is documented to run at quiescence.
unsafe impl Sync for Ring {}

impl Ring {
    fn new(track: u32, thread_name: String, capacity: usize) -> Self {
        Self {
            track,
            thread_name,
            head: AtomicU64::new(0),
            slots: (0..capacity.max(2))
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    event: UnsafeCell::new(EMPTY_EVENT),
                })
                .collect(),
        }
    }

    /// Owner-thread-only append.
    fn push(&self, event: TraceEvent) {
        let head = self.head.load(Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        // Invalidate first so a racing reader discards the slot while
        // the payload is torn.
        slot.seq.store(0, Release);
        // SAFETY: single writer (the owning thread); see `Sync` note.
        unsafe { *slot.event.get() = event };
        slot.seq.store(head + 1, Release);
        self.head.store(head + 1, Release);
    }

    /// Copies out every still-valid slot in write order, plus the
    /// number of events lost to wrap-around.
    fn read(&self) -> (Vec<TraceEvent>, u64) {
        let head = self.head.load(Acquire);
        let capacity = self.slots.len() as u64;
        let oldest = head.saturating_sub(capacity);
        let mut out: Vec<(u64, TraceEvent)> = Vec::new();
        for slot in self.slots.iter() {
            let before = slot.seq.load(Acquire);
            if before == 0 || before <= oldest || before > head {
                continue;
            }
            // SAFETY: copy validated by re-reading the seqlock below.
            let event = unsafe { *slot.event.get() };
            if slot.seq.load(Acquire) == before {
                out.push((before, event));
            }
        }
        out.sort_unstable_by_key(|&(seq, _)| seq);
        (out.into_iter().map(|(_, e)| e).collect(), oldest)
    }

    /// Owner- or quiescence-only: forget everything ever pushed.
    fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Release);
        }
        self.head.store(0, Release);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACK: AtomicU32 = AtomicU32::new(1);

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch.
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turns tracing on process-wide. Idempotent. Events recorded before
/// the first [`enable`] never existed; spans opened while disabled
/// stay inert even if tracing is enabled before they drop.
pub fn enable() {
    let _ = epoch(); // pin the epoch before the first event
    ENABLED.store(true, Release);
}

/// Turns tracing off process-wide. Spans already open keep recording
/// their `End` halves so the buffers stay balanced.
pub fn disable() {
    ENABLED.store(false, Release);
}

/// The hot-path check: one relaxed atomic load.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Sets the per-thread ring capacity for rings created *after* this
/// call (existing rings keep their size). Tests use small values to
/// exercise wrap-around.
pub fn set_ring_capacity(capacity: usize) {
    RING_CAPACITY.store(capacity.max(2), Relaxed);
}

/// Clears every registered ring. Call only at quiescence (no traced
/// work in flight); concurrent pushes may otherwise survive or land in
/// cleared slots, which is harmless but makes counts approximate.
pub fn reset() {
    for ring in registry().lock().unwrap().iter() {
        ring.clear();
    }
}

struct ThreadCtx {
    ring: Arc<Ring>,
    /// Open span ids, innermost last; supplies parent ids.
    stack: RefCell<Vec<u64>>,
}

thread_local! {
    static CTX: ThreadCtx = {
        let track = NEXT_TRACK.fetch_add(1, Relaxed);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{track}"), str::to_string);
        let ring = Arc::new(Ring::new(track, name, RING_CAPACITY.load(Relaxed)));
        registry().lock().unwrap().push(Arc::clone(&ring));
        ThreadCtx { ring, stack: RefCell::new(Vec::with_capacity(16)) }
    };
    /// Cheap reentrancy guard so a panic during CTX teardown can't
    /// recurse (accessing a TLS key during its own destruction aborts).
    static CTX_ALIVE: Cell<bool> = const { Cell::new(true) };
}

/// RAII guard for one traced span: `Begin` on construction, `End` on
/// drop. Inert (no allocation, no clock read) when tracing is off.
#[must_use = "a trace span records on drop; binding it to `_` drops it immediately"]
pub struct TraceSpan {
    /// `Some` only when the guard actually opened a span.
    open: Option<(&'static str, &'static str, u64, u64)>,
}

impl TraceSpan {
    /// A guard that records nothing.
    pub const fn inert() -> Self {
        Self { open: None }
    }

    /// Whether this guard is recording.
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some((name, cat, span, parent)) = self.open.take() else {
            return;
        };
        if !CTX_ALIVE.with(Cell::get) {
            return;
        }
        CTX.with(|ctx| {
            let mut stack = ctx.stack.borrow_mut();
            if stack.last() == Some(&span) {
                stack.pop();
            }
            drop(stack);
            ctx.ring.push(TraceEvent {
                name,
                cat,
                phase: Phase::End,
                ts_ns: now_ns(),
                span,
                parent,
                track: ctx.ring.track,
            });
        });
    }
}

/// Opens a traced span named `name` in category `cat` on the current
/// thread's track; the guard closes it. When tracing is disabled this
/// is a relaxed load and an inert guard.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> TraceSpan {
    if !is_enabled() {
        return TraceSpan::inert();
    }
    span_slow(name, cat)
}

#[cold]
fn span_slow(name: &'static str, cat: &'static str) -> TraceSpan {
    if !CTX_ALIVE.with(Cell::get) {
        return TraceSpan::inert();
    }
    CTX.with(|ctx| {
        let span = NEXT_SPAN.fetch_add(1, Relaxed);
        let parent = ctx.stack.borrow().last().copied().unwrap_or(0);
        ctx.ring.push(TraceEvent {
            name,
            cat,
            phase: Phase::Begin,
            ts_ns: now_ns(),
            span,
            parent,
            track: ctx.ring.track,
        });
        ctx.stack.borrow_mut().push(span);
        TraceSpan {
            open: Some((name, cat, span, parent)),
        }
    })
}

/// A balanced, per-track-ordered copy of everything the rings hold.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Events grouped by track (ascending), in recording order within
    /// each track; every span id appears exactly twice (begin + end).
    pub events: Vec<TraceEvent>,
    /// `(track id, thread name)` for every registered ring.
    pub tracks: Vec<(u32, String)>,
    /// Events lost to ring wrap-around.
    pub dropped: u64,
    /// Events discarded because their other half was dropped (or the
    /// span is still open).
    pub unmatched: u64,
}

/// Drains the registered rings into [`TraceSnapshot`]s and renders
/// them as Chrome Trace Event JSON.
pub struct TraceCollector;

impl TraceCollector {
    /// Snapshots every ring. Non-destructive; pair with [`reset`] when
    /// the next run must start from an empty buffer.
    pub fn collect() -> TraceSnapshot {
        let rings = registry().lock().unwrap();
        let mut per_ring: Vec<(u32, String, Vec<TraceEvent>)> = Vec::new();
        let mut dropped = 0u64;
        let mut halves: BTreeMap<u64, (bool, bool)> = BTreeMap::new();
        for ring in rings.iter() {
            let (events, lost) = ring.read();
            dropped += lost;
            for event in &events {
                let entry = halves.entry(event.span).or_insert((false, false));
                match event.phase {
                    Phase::Begin => entry.0 = true,
                    Phase::End => entry.1 = true,
                }
            }
            per_ring.push((ring.track, ring.thread_name.clone(), events));
        }
        drop(rings);
        per_ring.sort_by_key(|&(track, _, _)| track);

        let mut snapshot = TraceSnapshot::default();
        for (track, name, events) in per_ring {
            snapshot.tracks.push((track, name));
            for event in events {
                let &(begin, end) = halves.get(&event.span).expect("span indexed");
                if begin && end {
                    snapshot.events.push(event);
                } else {
                    snapshot.unmatched += 1;
                }
            }
        }
        snapshot.dropped = dropped;
        snapshot
    }
}

impl TraceSnapshot {
    /// Number of complete spans (half the event count).
    pub fn span_count(&self) -> usize {
        self.events.len() / 2
    }

    /// Renders the snapshot in Chrome Trace Event Format: an object
    /// with a `traceEvents` array of `M` (metadata) and `B`/`E` events
    /// — `ts` in microseconds, one `tid` per track — plus the drop
    /// counters. `extra` fields (e.g. the op profile) are appended at
    /// the top level, where trace viewers ignore them.
    pub fn to_chrome_json(&self, extra: &[(&str, Json)]) -> Json {
        let mut events = Vec::with_capacity(self.events.len() + self.tracks.len() + 1);
        events.push(
            Json::obj()
                .field("name", "process_name")
                .field("ph", "M")
                .field("pid", 1u64)
                .field("args", Json::obj().field("name", "poisonrec")),
        );
        for (track, name) in &self.tracks {
            events.push(
                Json::obj()
                    .field("name", "thread_name")
                    .field("ph", "M")
                    .field("pid", 1u64)
                    .field("tid", *track)
                    .field("args", Json::obj().field("name", name.as_str())),
            );
        }
        for event in &self.events {
            events.push(
                Json::obj()
                    .field("name", event.name)
                    .field("cat", event.cat)
                    .field(
                        "ph",
                        match event.phase {
                            Phase::Begin => "B",
                            Phase::End => "E",
                        },
                    )
                    .field("ts", event.ts_ns as f64 / 1_000.0)
                    .field("pid", 1u64)
                    .field("tid", event.track)
                    .field(
                        "args",
                        Json::obj()
                            .field("span", event.span)
                            .field("parent", event.parent),
                    ),
            );
        }
        let mut doc = Json::obj()
            .field("traceEvents", Json::Arr(events))
            .field("displayTimeUnit", "ms")
            .field("droppedEvents", self.dropped)
            .field("unmatchedEvents", self.unmatched);
        for (key, value) in extra {
            doc = doc.field(key, value.clone());
        }
        doc
    }

    /// [`TraceSnapshot::to_chrome_json`] written to `path`.
    pub fn write_chrome(
        &self,
        path: impl AsRef<std::path::Path>,
        extra: &[(&str, Json)],
    ) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_chrome_json(extra).render())
    }
}

// ---- Chrome-trace validation & aggregation (shared by the bins) -----------

/// Summary a successful [`validate_chrome`] returns.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChromeStats {
    /// `B`/`E` events (metadata lines excluded).
    pub events: u64,
    /// Complete spans (= `events / 2`).
    pub spans: u64,
    /// Distinct `tid`s that carried spans.
    pub tracks: u64,
}

fn event_array(doc: &Json) -> Result<&[Json], String> {
    match doc.get("traceEvents") {
        Some(Json::Arr(events)) => Ok(events),
        Some(other) => Err(format!("`traceEvents` is not an array: {other:?}")),
        None => Err("document has no `traceEvents` field".into()),
    }
}

/// Validates a Chrome Trace document against the workspace schema:
/// every event has `name`/`ph`/`pid`, `B`/`E` events carry `ts`, `tid`
/// and `args.span`, per-track timestamps are monotone non-decreasing,
/// `B`/`E` nest properly per track (LIFO), and every span id has
/// exactly one begin and one end.
pub fn validate_chrome(doc: &Json) -> Result<ChromeStats, String> {
    let events = event_array(doc)?;
    let mut stats = ChromeStats::default();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut stacks: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut halves: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        if event.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing `name`"));
        }
        if event.get("pid").and_then(Json::as_u64).is_none() {
            return Err(format!("event {i}: missing numeric `pid`"));
        }
        if ph == "M" {
            continue; // metadata: name/pid checked above
        }
        if ph != "B" && ph != "E" {
            return Err(format!("event {i}: unsupported phase `{ph}`"));
        }
        let tid = event
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing numeric `tid`"))?;
        let ts = event
            .get("ts")
            .and_then(Json::as_f64)
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("event {i}: missing finite `ts`"))?;
        let span = event
            .get("args")
            .and_then(|a| a.get("span"))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing `args.span`"))?;
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "event {i}: track {tid} timestamp went backwards ({prev} -> {ts})"
                ));
            }
        }
        last_ts.insert(tid, ts);
        stats.events += 1;
        let stack = stacks.entry(tid).or_default();
        let counts = halves.entry(span).or_insert((0, 0));
        if ph == "B" {
            counts.0 += 1;
            stack.push(span);
        } else {
            counts.1 += 1;
            match stack.pop() {
                Some(open) if open == span => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: track {tid} closed span {span} but span {open} was open"
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i}: track {tid} closed span {span} with no span open"
                    ));
                }
            }
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("track {tid}: span {open} never closed"));
        }
    }
    for (span, (begins, ends)) in &halves {
        if *begins != 1 || *ends != 1 {
            return Err(format!(
                "span {span}: {begins} begin(s) / {ends} end(s), expected exactly one of each"
            ));
        }
    }
    stats.spans = stats.events / 2;
    stats.tracks = stacks.len() as u64;
    Ok(stats)
}

/// Per-name aggregate produced by [`aggregate_chrome`].
#[derive(Clone, Debug, PartialEq)]
pub struct NameAgg {
    pub name: String,
    pub cat: String,
    /// Completed spans with this name.
    pub count: u64,
    /// Wall time including children.
    pub total_ns: u64,
    /// Wall time excluding child spans (flamegraph self time).
    pub self_ns: u64,
}

/// Flamegraph-style aggregation of a (validated) Chrome trace: per
/// span name, the invocation count plus total and self wall time.
/// Returns the aggregates (self-time descending) and the traced wall
/// time — the summed duration of root spans, which the self times of
/// all names add up to exactly.
pub fn aggregate_chrome(doc: &Json) -> Result<(Vec<NameAgg>, u64), String> {
    let events = event_array(doc)?;
    struct Open {
        name: String,
        cat: String,
        start_ns: u64,
        child_ns: u64,
        root: bool,
    }
    let mut stacks: BTreeMap<u64, Vec<Open>> = BTreeMap::new();
    let mut by_name: BTreeMap<(String, String), NameAgg> = BTreeMap::new();
    let mut root_ns = 0u64;
    for (i, event) in events.iter().enumerate() {
        let ph = event.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph != "B" && ph != "E" {
            continue;
        }
        let tid = event
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing `tid`"))?;
        let ts_ns = event
            .get("ts")
            .and_then(Json::as_f64)
            .map(|us| (us * 1_000.0).round() as u64)
            .ok_or_else(|| format!("event {i}: missing `ts`"))?;
        let stack = stacks.entry(tid).or_default();
        if ph == "B" {
            let name = event.get("name").and_then(Json::as_str).unwrap_or("?");
            let cat = event.get("cat").and_then(Json::as_str).unwrap_or("");
            stack.push(Open {
                name: name.to_string(),
                cat: cat.to_string(),
                start_ns: ts_ns,
                child_ns: 0,
                root: stack.is_empty(),
            });
        } else {
            let open = stack
                .pop()
                .ok_or_else(|| format!("event {i}: end with no open span (validate first)"))?;
            let total = ts_ns.saturating_sub(open.start_ns);
            let agg = by_name
                .entry((open.name.clone(), open.cat.clone()))
                .or_insert_with(|| NameAgg {
                    name: open.name.clone(),
                    cat: open.cat.clone(),
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                });
            agg.count += 1;
            agg.total_ns += total;
            agg.self_ns += total.saturating_sub(open.child_ns);
            if open.root {
                root_ns += total;
            } else if let Some(parent) = stack.last_mut() {
                parent.child_ns += total;
            }
        }
    }
    let mut aggs: Vec<NameAgg> = by_name.into_values().collect();
    aggs.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    Ok((aggs, root_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// Tracing state is process-global; tests in this module serialize
    /// on one lock so enable/collect/reset can't interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn fresh() {
        disable();
        reset();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = lock();
        fresh();
        {
            let s = span("idle", "test");
            assert!(!s.is_recording());
        }
        assert_eq!(TraceCollector::collect().events.len(), 0);
    }

    #[test]
    fn nested_spans_round_trip_through_chrome_json() {
        let _guard = lock();
        fresh();
        enable();
        {
            let _outer = span("outer", "test");
            let _inner = span("inner", "test");
        }
        {
            let _solo = span("solo", "test");
        }
        disable();
        let snapshot = TraceCollector::collect();
        assert_eq!(snapshot.span_count(), 3);
        assert_eq!(snapshot.unmatched, 0);

        // Parent linkage: inner's parent is outer, roots have parent 0.
        let begins: Vec<&TraceEvent> = snapshot
            .events
            .iter()
            .filter(|e| e.phase == Phase::Begin)
            .collect();
        let outer = begins.iter().find(|e| e.name == "outer").unwrap();
        let inner = begins.iter().find(|e| e.name == "inner").unwrap();
        let solo = begins.iter().find(|e| e.name == "solo").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.span);
        assert_eq!(solo.parent, 0);

        // The export parses with the crate's own parser and validates.
        let doc = json::parse(&snapshot.to_chrome_json(&[]).render()).expect("chrome JSON parses");
        let stats = validate_chrome(&doc).expect("valid trace");
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.tracks, 1);

        let (aggs, root_ns) = aggregate_chrome(&doc).expect("aggregates");
        let self_sum: u64 = aggs.iter().map(|a| a.self_ns).sum();
        assert_eq!(self_sum, root_ns, "self times partition traced wall time");
        reset();
    }

    #[test]
    fn open_spans_are_filtered_until_closed() {
        let _guard = lock();
        fresh();
        enable();
        let open = span("open", "test");
        {
            let _closed = span("closed", "test");
        }
        let mid = TraceCollector::collect();
        assert_eq!(mid.span_count(), 1, "only the closed span is complete");
        assert_eq!(mid.unmatched, 1, "the open begin half is unmatched");
        drop(open);
        disable();
        let done = TraceCollector::collect();
        assert_eq!(done.span_count(), 2);
        assert_eq!(done.unmatched, 0);
        reset();
    }

    #[test]
    fn wrapping_ring_keeps_survivors_balanced() {
        let _guard = lock();
        fresh();
        enable();
        // This thread's ring may already exist at default capacity, so
        // wrap it the honest way: far more spans than any capacity.
        for _ in 0..DEFAULT_RING_CAPACITY {
            let _s = span("spin", "test");
        }
        disable();
        let snapshot = TraceCollector::collect();
        assert!(snapshot.dropped > 0, "ring must have wrapped");
        let doc = snapshot.to_chrome_json(&[]);
        validate_chrome(&doc).expect("survivors stay balanced and nested");
        reset();
    }

    #[test]
    fn validator_rejects_unbalanced_and_nonmonotone_documents() {
        let make = |events: &str| {
            json::parse(&format!("{{\"traceEvents\":[{events}]}}")).expect("test doc parses")
        };
        let begin = r#"{"name":"a","cat":"t","ph":"B","ts":1.0,"pid":1,"tid":1,"args":{"span":1,"parent":0}}"#;
        let end = r#"{"name":"a","cat":"t","ph":"E","ts":2.0,"pid":1,"tid":1,"args":{"span":1,"parent":0}}"#;
        let early_end = r#"{"name":"a","cat":"t","ph":"E","ts":0.5,"pid":1,"tid":1,"args":{"span":1,"parent":0}}"#;

        validate_chrome(&make(&format!("{begin},{end}"))).expect("balanced pair is valid");
        assert!(validate_chrome(&make(begin)).is_err(), "unclosed span");
        assert!(validate_chrome(&make(end)).is_err(), "end without begin");
        assert!(
            validate_chrome(&make(&format!("{begin},{early_end}"))).is_err(),
            "timestamps must be monotone per track"
        );
        assert!(
            validate_chrome(&make(&format!("{begin},{end},{begin},{end}"))).is_err(),
            "span ids must be unique"
        );
        assert!(validate_chrome(&json::parse("{}").unwrap()).is_err());
    }
}
