//! The `BENCH_*.json` performance-snapshot schema and the regression
//! comparison behind the `perf_diff` bin.
//!
//! A snapshot is one JSON object:
//!
//! ```json
//! {
//!   "schema": "poisonrec-bench-v1",
//!   "label": "PR4",
//!   "metrics": [
//!     {"name": "step_total_secs_median", "value": 0.0123, "unit": "s"},
//!     {"name": "op/MatMul/fwd_ns_per_call", "value": 84000.0, "unit": "ns"}
//!   ]
//! }
//! ```
//!
//! Every metric is **lower-is-better** wall time (seconds or
//! nanoseconds); [`diff`] flags a metric as regressed when the
//! candidate exceeds the baseline by more than the relative threshold
//! (default [`DEFAULT_THRESHOLD`], i.e. +10%). Metrics present on only
//! one side are reported but never fail the gate — op tables legitimately
//! gain and lose rows as instrumentation evolves.

use std::collections::BTreeMap;

use crate::json::Json;

/// Identifies the snapshot format; bump on breaking changes.
pub const SCHEMA: &str = "poisonrec-bench-v1";

/// Default relative-increase tolerance for [`diff`]: +10%. Chosen so
/// same-file self-comparison always passes while the CI +20% synthetic
/// regression fixture always fails.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// One named lower-is-better measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    pub name: String,
    pub value: f64,
    pub unit: String,
}

/// A parsed `BENCH_*.json` snapshot.
#[derive(Clone, Debug, Default)]
pub struct BenchSnapshot {
    pub label: String,
    pub metrics: Vec<Metric>,
}

impl BenchSnapshot {
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            metrics: Vec::new(),
        }
    }

    /// Appends one measurement; non-finite values are refused at the
    /// source rather than poisoning a later [`diff`].
    pub fn push(&mut self, name: impl Into<String>, value: f64, unit: impl Into<String>) {
        assert!(value.is_finite(), "bench metric must be finite");
        self.metrics.push(Metric {
            name: name.into(),
            value,
            unit: unit.into(),
        });
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", SCHEMA)
            .field("label", self.label.as_str())
            .field(
                "metrics",
                Json::Arr(
                    self.metrics
                        .iter()
                        .map(|m| {
                            Json::obj()
                                .field("name", m.name.as_str())
                                .field("value", m.value)
                                .field("unit", m.unit.as_str())
                        })
                        .collect(),
                ),
            )
    }

    /// Parses and schema-checks a snapshot document.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unknown bench schema `{other}`")),
            None => return Err("missing `schema` field".into()),
        }
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let Some(Json::Arr(rows)) = doc.get("metrics") else {
            return Err("missing `metrics` array".into());
        };
        let mut snapshot = Self::new(label);
        for (i, row) in rows.iter().enumerate() {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("metric {i}: missing `name`"))?;
            let value = row
                .get("value")
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite())
                .ok_or_else(|| format!("metric {i} (`{name}`): missing finite `value`"))?;
            let unit = row.get("unit").and_then(Json::as_str).unwrap_or("");
            snapshot.push(name, value, unit);
        }
        Ok(snapshot)
    }
}

/// Verdict for one metric name across the two snapshots.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Within threshold (includes improvements).
    Ok,
    /// Candidate exceeded baseline by more than the threshold.
    Regressed,
    /// Present only in the baseline.
    BaselineOnly,
    /// Present only in the candidate.
    CandidateOnly,
}

/// One row of a [`diff`] report.
#[derive(Clone, Debug)]
pub struct DiffRow {
    pub name: String,
    pub baseline: Option<f64>,
    pub candidate: Option<f64>,
    /// `(candidate - baseline) / baseline`; `None` when either side is
    /// missing or the baseline is zero.
    pub relative: Option<f64>,
    pub verdict: Verdict,
}

/// Compares `candidate` against `baseline` metric-by-metric. A metric
/// regresses when `candidate > baseline * (1 + threshold)` (with a
/// zero baseline, when the candidate is positive at all). Rows come
/// back in baseline order, candidate-only rows appended.
pub fn diff(baseline: &BenchSnapshot, candidate: &BenchSnapshot, threshold: f64) -> Vec<DiffRow> {
    let cand: BTreeMap<&str, f64> = candidate
        .metrics
        .iter()
        .map(|m| (m.name.as_str(), m.value))
        .collect();
    let base_names: BTreeMap<&str, f64> = baseline
        .metrics
        .iter()
        .map(|m| (m.name.as_str(), m.value))
        .collect();
    let mut rows = Vec::new();
    for metric in &baseline.metrics {
        let row = match cand.get(metric.name.as_str()) {
            Some(&now) => {
                let relative = if metric.value > 0.0 {
                    Some((now - metric.value) / metric.value)
                } else {
                    None
                };
                let regressed = if metric.value > 0.0 {
                    now > metric.value * (1.0 + threshold)
                } else {
                    now > 0.0
                };
                DiffRow {
                    name: metric.name.clone(),
                    baseline: Some(metric.value),
                    candidate: Some(now),
                    relative,
                    verdict: if regressed {
                        Verdict::Regressed
                    } else {
                        Verdict::Ok
                    },
                }
            }
            None => DiffRow {
                name: metric.name.clone(),
                baseline: Some(metric.value),
                candidate: None,
                relative: None,
                verdict: Verdict::BaselineOnly,
            },
        };
        rows.push(row);
    }
    for metric in &candidate.metrics {
        if !base_names.contains_key(metric.name.as_str()) {
            rows.push(DiffRow {
                name: metric.name.clone(),
                baseline: None,
                candidate: Some(metric.value),
                relative: None,
                verdict: Verdict::CandidateOnly,
            });
        }
    }
    rows
}

/// Whether any row fails the gate.
pub fn has_regression(rows: &[DiffRow]) -> bool {
    rows.iter().any(|r| r.verdict == Verdict::Regressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn snap(pairs: &[(&str, f64)]) -> BenchSnapshot {
        let mut s = BenchSnapshot::new("test");
        for &(name, value) in pairs {
            s.push(name, value, "s");
        }
        s
    }

    #[test]
    fn self_compare_is_clean() {
        let s = snap(&[("a", 1.0), ("b", 0.5)]);
        let rows = diff(&s, &s, DEFAULT_THRESHOLD);
        assert_eq!(rows.len(), 2);
        assert!(!has_regression(&rows));
        assert!(rows.iter().all(|r| r.relative == Some(0.0)));
    }

    #[test]
    fn twenty_percent_slower_fails_default_gate() {
        let base = snap(&[("step", 1.0)]);
        let worse = snap(&[("step", 1.2)]);
        assert!(has_regression(&diff(&base, &worse, DEFAULT_THRESHOLD)));
        // ...while a 20% tolerance would (just) let +20% through at 1.2
        // == 1.0 * 1.2 — strictly-greater comparison, not >=.
        assert!(!has_regression(&diff(&base, &worse, 0.20)));
        let faster = snap(&[("step", 0.4)]);
        assert!(!has_regression(&diff(&base, &faster, DEFAULT_THRESHOLD)));
    }

    #[test]
    fn missing_metrics_report_but_do_not_fail() {
        let base = snap(&[("old", 1.0)]);
        let cand = snap(&[("new", 1.0)]);
        let rows = diff(&base, &cand, DEFAULT_THRESHOLD);
        assert!(!has_regression(&rows));
        assert_eq!(rows[0].verdict, Verdict::BaselineOnly);
        assert_eq!(rows[1].verdict, Verdict::CandidateOnly);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = snap(&[("a", 0.125), ("b", 3.0)]);
        let doc = json::parse(&s.to_json().render()).expect("renders valid JSON");
        let back = BenchSnapshot::from_json(&doc).expect("parses back");
        assert_eq!(back.label, "test");
        assert_eq!(back.metrics, s.metrics);
        assert!(BenchSnapshot::from_json(&json::parse("{}").unwrap()).is_err());
    }
}
