//! A minimal JSON value type with writer and parser.
//!
//! The build environment has no crates.io access, so there is no serde;
//! this module hand-rolls exactly what the run-log sink and its
//! validator need: objects with ordered keys, the three numeric shapes
//! the workspace emits (`u64` counts, `i64` gauges, `f64` timings),
//! strings with full escape handling, and a recursive-descent parser
//! so tests and `validate_jsonl` can read lines back.
//!
//! Non-finite floats have no JSON representation and render as `null`
//! (timings are always finite; this is a guard, not a feature).

use std::fmt;

/// A JSON value. Object keys keep insertion order so emitted lines are
/// stable and diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::U64(v.into())
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Self {
        Json::F64(v.into())
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// An empty object, the root of the [`Json::field`] builder chain.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object (builder style). Panics on
    /// non-objects — builder misuse is a programming error.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Any numeric shape as `u64` (floats only when exactly integral).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Any numeric shape as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a single line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip Display is valid JSON
                    // for every finite double.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bare escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("non-ASCII \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        let code = if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(self.error("invalid low surrogate"));
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            } else {
                return Err(self.error("lone high surrogate"));
            }
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.error("invalid code point"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            // Integers keep their exact shape (u64 counts can exceed
            // the 2^53 double-precision window).
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_ordered_fields() {
        let line = Json::obj()
            .field("type", "step")
            .field("step", 3usize)
            .field("mean", 1.5)
            .field("ok", true)
            .render();
        assert_eq!(line, r#"{"type":"step","step":3,"mean":1.5,"ok":true}"#);
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote\" slash\\ newline\n tab\t nul\u{1} emoji🦀";
        let rendered = Json::obj().field("s", nasty).render();
        let parsed = parse(&rendered).expect("parses");
        assert_eq!(parsed.get("s").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.0f64, 0.1, -3.25, 1e-9, 123456.789, 1e300] {
            let rendered = Json::F64(v).render();
            let parsed = parse(&rendered).expect("parses");
            assert_eq!(parsed.as_f64().map(f64::to_bits), Some(v.to_bits()));
        }
        assert_eq!(parse("18446744073709551615"), Ok(Json::U64(u64::MAX)));
        assert_eq!(parse("-42"), Ok(Json::I64(-42)));
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#" {"a": [1, 2.5, null, {"b": "A🦀"}], "c": false} "#;
        let v = parse(doc).expect("parses");
        let arr = match v.get("a") {
            Some(Json::Arr(items)) => items,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(arr[0], Json::U64(1));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(arr[3].get("b").and_then(Json::as_str), Some("A🦀"));
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
