//! # telemetry
//!
//! The workspace's zero-dependency observability layer. Three pieces,
//! each usable on its own (see DESIGN.md §5b for how they are wired
//! through the stack):
//!
//! * [`metrics`] — a process-wide registry of named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and fixed-bucket [`metrics::Histogram`]s. All
//!   instruments are lock-free atomics, cheap enough for hot paths; the
//!   registry itself is only locked at registration and snapshot time.
//!   [`metrics::snapshot`] returns a point-in-time copy of everything.
//! * [`span`] — RAII timers over the monotonic clock
//!   ([`std::time::Instant`]): a [`span::Span`] records its lifetime
//!   into a registry histogram on drop; a [`span::Stopwatch`] is the
//!   bare building block when the caller wants the number itself.
//! * [`json`] + [`sink`] — a hand-rolled JSON value type with writer
//!   *and* parser (the build environment has no crates.io access, so
//!   no serde), and a thread-safe JSONL event sink built on it. Run
//!   logs are one `manifest` line followed by per-step `event` lines;
//!   `src/bin/validate_jsonl.rs` checks that schema and backs the CI
//!   smoke stage.
//!
//! * [`trace`] — hierarchical begin/end span tracing into per-thread
//!   lock-free ring buffers behind one process-wide enable flag,
//!   drained by [`trace::TraceCollector`] into Chrome Trace Event
//!   Format JSON (open in Perfetto or `chrome://tracing`). See
//!   DESIGN.md §5d.
//! * [`perf`] — the `BENCH_*.json` snapshot schema shared by
//!   `scripts/bench_snapshot.sh` and the `perf_diff` regression gate.
//! * [`stream`] — the streaming observability plane (DESIGN.md §5i):
//!   sliding-window counters/histograms over a rotated bucket ring,
//!   EWMA smoothers, CUSUM drift detectors, and labeled counter
//!   families with a hard cardinality cap. The cumulative [`metrics`]
//!   registry stays the "since process start" layer underneath.
//! * [`prom`] — Prometheus text exposition over both layers, served by
//!   `serve` at `GET /metrics?format=prom` and checked by
//!   `src/bin/validate_prom.rs`.
//!
//! Nothing in this crate touches any RNG: instrumentation can never
//! perturb the workspace's determinism guarantees (only the *timing
//! values* in the output differ between runs).

pub mod json;
pub mod metrics;
pub mod perf;
pub mod prom;
pub mod sink;
pub mod span;
pub mod stream;
pub mod trace;

pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, Registry, Snapshot, TIME_BUCKETS};
pub use sink::{AsyncJsonlSink, JsonlSink};
pub use span::{Span, Stopwatch};
pub use stream::{
    CounterFamily, CusumConfig, DriftDetector, Ewma, StreamRegistry, StreamSnapshot, WindowSpec,
    WindowedCounter, WindowedHistogram,
};
pub use trace::{TraceCollector, TraceSnapshot, TraceSpan};
