//! Result reporting: CSV writers and aligned markdown tables for the
//! experiment binaries. No external dependencies — experiments write
//! plain artifacts under `results/`.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular results table with named columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        Self {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the header.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// RFC-4180-ish CSV (quotes fields containing separators/quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, field) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if field.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&field.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(field);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.columns);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Aligned GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, field) in widths.iter_mut().zip(row) {
                *w = (*w).max(field.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String], widths: &[usize]| {
            out.push('|');
            for (field, w) in row.iter().zip(widths) {
                let _ = write!(out, " {field:<w$} |");
            }
            out.push('\n');
        };
        write_row(&mut out, &self.columns, &widths);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<1$}|", "", w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row, &widths);
        }
        out
    }

    /// Writes the CSV form, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Writes arbitrary text, creating parent directories.
pub fn write_text(path: impl AsRef<Path>, content: &str) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_basics() {
        let mut t = Table::new(["a", "b"]);
        t.push(["1", "hello, world"]);
        t.push(["2", "quote \" inside"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,\"hello, world\"\n2,\"quote \"\" inside\"\n");
    }

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new(["method", "RecNum"]);
        t.push(["PoisonRec", "6496"]);
        t.push(["Random", "7"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{md}");
        assert!(lines[0].contains("method"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a"]);
        t.push(["1", "2"]);
    }
}
