//! Exact t-SNE (van der Maaten & Hinton, 2008) for the Figure 6 item-
//! embedding visualizations.
//!
//! This is the standard O(n²) formulation: Gaussian input affinities
//! with per-point perplexity calibration via binary search, Student-t
//! output affinities, gradient descent with momentum and early
//! exaggeration. The paper's figures visualize ~5k item embeddings;
//! exact t-SNE handles that in seconds at reduced iteration counts and
//! the experiment driver subsamples for speed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// t-SNE hyperparameters.
#[derive(Copy, Clone, Debug)]
pub struct TsneConfig {
    pub perplexity: f64,
    pub iterations: usize,
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the
    /// iterations.
    pub exaggeration: f64,
    pub momentum: f64,
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 250,
            learning_rate: 100.0,
            exaggeration: 6.0,
            momentum: 0.8,
            seed: 42,
        }
    }
}

/// Embeds `n` points of dimension `d` (row-major `data`, length `n*d`)
/// into 2-D. Returns `n` (x, y) pairs.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `d` or fewer than 4
/// points are given.
#[allow(clippy::manual_is_multiple_of)]
pub fn tsne_2d(data: &[f32], d: usize, cfg: &TsneConfig) -> Vec<(f32, f32)> {
    assert!(d > 0 && data.len() % d == 0, "data length must be n*d");
    let n = data.len() / d;
    assert!(n >= 4, "t-SNE needs at least 4 points");

    // Pairwise squared distances.
    let mut dist2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut acc = 0.0f64;
            for k in 0..d {
                let delta = (data[i * d + k] - data[j * d + k]) as f64;
                acc += delta * delta;
            }
            dist2[i * n + j] = acc;
            dist2[j * n + i] = acc;
        }
    }

    // Conditional affinities with perplexity-calibrated bandwidths.
    let target_entropy = cfg.perplexity.max(2.0).ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let row = &dist2[i * n..(i + 1) * n];
        let (mut beta, mut beta_lo, mut beta_hi) = (1.0f64, 0.0f64, f64::INFINITY);
        for _ in 0..50 {
            // Entropy at the current bandwidth.
            let mut sum = 0.0;
            let mut weighted = 0.0;
            for (j, &d2) in row.iter().enumerate() {
                if j != i {
                    let w = (-beta * d2).exp();
                    sum += w;
                    weighted += w * d2;
                }
            }
            if sum <= 0.0 {
                break;
            }
            let entropy = beta * weighted / sum + sum.ln();
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_lo = beta;
                beta = if beta_hi.is_finite() {
                    (beta + beta_hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        let mut sum = 0.0;
        for (j, &d2) in row.iter().enumerate() {
            if j != i {
                let w = (-beta * d2).exp();
                p[i * n + j] = w;
                sum += w;
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrize.
    let mut p_sym = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            p_sym[i * n + j] = (p[i * n + j] + p[j * n + i]) / (2.0 * n as f64);
        }
    }

    // Gradient descent on the 2-D map.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut y: Vec<f64> = (0..n * 2).map(|_| rng.gen_range(-1e-2..1e-2)).collect();
    let mut velocity = vec![0.0f64; n * 2];
    let exaggerate_until = cfg.iterations / 4;

    let mut q = vec![0.0f64; n * n];
    for iter in 0..cfg.iterations {
        // Student-t output affinities.
        let mut q_sum = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i * 2] - y[j * 2];
                let dy = y[i * 2 + 1] - y[j * 2 + 1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                q_sum += 2.0 * w;
            }
        }
        let exaggeration = if iter < exaggerate_until {
            cfg.exaggeration
        } else {
            1.0
        };

        for i in 0..n {
            let mut gx = 0.0f64;
            let mut gy = 0.0f64;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let q_ij = (w / q_sum).max(1e-12);
                let coeff = 4.0 * (exaggeration * p_sym[i * n + j] - q_ij) * w;
                gx += coeff * (y[i * 2] - y[j * 2]);
                gy += coeff * (y[i * 2 + 1] - y[j * 2 + 1]);
            }
            velocity[i * 2] = cfg.momentum * velocity[i * 2] - cfg.learning_rate * gx;
            velocity[i * 2 + 1] = cfg.momentum * velocity[i * 2 + 1] - cfg.learning_rate * gy;
        }
        for (yv, v) in y.iter_mut().zip(&velocity) {
            *yv += v;
        }
    }

    (0..n)
        .map(|i| (y[i * 2] as f32, y[i * 2 + 1] as f32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs must stay separated in 2-D.
    #[test]
    fn separates_two_blobs() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = 6;
        let per_blob = 30;
        let mut data = Vec::with_capacity(2 * per_blob * d);
        for blob in 0..2 {
            let center = blob as f32 * 12.0;
            for _ in 0..per_blob {
                for _ in 0..d {
                    data.push(center + rng.gen_range(-0.5..0.5));
                }
            }
        }
        let cfg = TsneConfig {
            iterations: 150,
            perplexity: 10.0,
            ..Default::default()
        };
        let embedded = tsne_2d(&data, d, &cfg);
        assert_eq!(embedded.len(), 2 * per_blob);

        // Mean intra-blob distance must be well below inter-blob distance.
        let dist = |a: (f32, f32), b: (f32, f32)| -> f32 {
            ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
        };
        let centroid = |pts: &[(f32, f32)]| -> (f32, f32) {
            let n = pts.len() as f32;
            (
                pts.iter().map(|p| p.0).sum::<f32>() / n,
                pts.iter().map(|p| p.1).sum::<f32>() / n,
            )
        };
        let (a, b) = embedded.split_at(per_blob);
        let (ca, cb) = (centroid(a), centroid(b));
        let intra_a: f32 = a.iter().map(|&p| dist(p, ca)).sum::<f32>() / per_blob as f32;
        let intra_b: f32 = b.iter().map(|&p| dist(p, cb)).sum::<f32>() / per_blob as f32;
        let inter = dist(ca, cb);
        assert!(
            inter > 2.0 * (intra_a + intra_b) / 2.0,
            "blobs overlap: inter {inter}, intra {intra_a}/{intra_b}"
        );
    }

    #[test]
    fn output_is_finite_and_deterministic() {
        let data: Vec<f32> = (0..20 * 4).map(|i| (i % 7) as f32 * 0.3).collect();
        let cfg = TsneConfig {
            iterations: 60,
            perplexity: 5.0,
            ..Default::default()
        };
        let a = tsne_2d(&data, 4, &cfg);
        let b = tsne_2d(&data, 4, &cfg);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(x, y)| x.is_finite() && y.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least 4 points")]
    fn too_few_points_panics() {
        let _ = tsne_2d(&[0.0; 6], 2, &TsneConfig::default());
    }
}
