//! # analysis
//!
//! Analysis toolkit for the PoisonRec reproduction:
//!
//! * [`tsne`] — exact t-SNE for the Figure 6 item-embedding plots.
//! * [`report`] — CSV / markdown table writers used by every
//!   experiment binary.
//! * [`stats`] — rank correlations (Spearman, Kendall) for comparing
//!   measured orderings against the paper's tables.

pub mod report;
pub mod stats;
pub mod tsne;

pub use report::{write_text, Table};
pub use stats::{fractional_ranks, kendall_tau, pearson, spearman};
pub use tsne::{tsne_2d, TsneConfig};
