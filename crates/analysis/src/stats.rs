//! Rank statistics used to compare the reproduction's orderings with
//! the paper's reported numbers (EXPERIMENTS.md): Spearman's ρ,
//! Kendall's τ, and fractional ranking with tie handling.

/// Fractional ranks (1-based; ties share the average rank).
pub fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average rank of the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's rank correlation ρ (NaN-free; returns 0 for degenerate
/// inputs such as constant vectors or length < 2).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman arity mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = fractional_ranks(a);
    let rb = fractional_ranks(b);
    pearson(&ra, &rb)
}

/// Pearson correlation (0 for degenerate inputs).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson arity mismatch");
    let n = a.len() as f64;
    if a.len() < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Kendall's τ-b (handles ties in either ranking; 0 for degenerate
/// inputs).
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "kendall arity mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut ties_a, mut ties_b) = (0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 && db == 0.0 {
                continue;
            } else if da == 0.0 {
                ties_a += 1;
            } else if db == 0.0 {
                ties_b += 1;
            } else if (da > 0.0) == (db > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom <= 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Index of the maximum (first on ties); `None` for empty input.
pub fn argmax(values: &[f64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &v) in values.iter().enumerate() {
        if best.is_none_or(|b| v > values[b]) {
            best = Some(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_with_ties() {
        let r = fractional_ranks(&[10.0, 20.0, 20.0, 5.0]);
        assert_eq!(r, vec![2.0, 3.5, 3.5, 1.0]);
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-9);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_is_scale_free() {
        let a = [1.0, 5.0, 2.0, 9.0, 3.0];
        let b: Vec<f64> = a.iter().map(|x| x * 1000.0 + 7.0).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kendall_basics() {
        let a = [1.0, 2.0, 3.0];
        assert!((kendall_tau(&a, &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-9);
        assert!((kendall_tau(&a, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-9);
        // One swap of three: tau = 1/3.
        assert!((kendall_tau(&a, &[2.0, 1.0, 3.0]) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[3.0, 3.0], &[1.0, 2.0]), 0.0);
        assert_eq!(kendall_tau(&[1.0, 1.0], &[2.0, 2.0]), 0.0);
    }

    #[test]
    fn argmax_cases() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
    }
}
