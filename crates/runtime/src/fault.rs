//! Deterministic fault injection for crash-safety testing.
//!
//! A [`FaultPlan`] scripts two kinds of failure:
//!
//! * **job panics** — armed on a [`crate::WorkerPool`] via
//!   [`crate::WorkerPool::arm_faults`], the plan counts every job the
//!   pool claims (across batches, in claim order) and panics inside the
//!   scripted ordinals. The panic happens *inside* the pool's
//!   catch-unwind boundary, so it exercises exactly the production
//!   panic path: the batch settles, other jobs complete, the first
//!   payload is re-raised on the caller, and the pool stays usable.
//! * **process kills** — long-running drivers (the experiment binaries'
//!   checkpoint loops) call [`FaultPlan::kill_if_due`] between trainer
//!   steps; at the scripted step the process exits with
//!   [`FAULT_EXIT_CODE`], simulating a crash at a step boundary. CI
//!   uses this to prove a killed run resumes bit-identically.
//!
//! Plans are either scripted explicitly ([`FaultPlan::panic_on_job`],
//! [`FaultPlan::kill_at_step`]) or drawn deterministically from a seed
//! ([`FaultPlan::seeded`]) so a failing fuzz-style run can be replayed
//! exactly. Arming is per-pool — tests running in parallel against
//! their own pools never interfere.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Exit code used by [`FaultPlan::kill_if_due`], distinguishable from
/// a genuine panic (101) or success (0) so harnesses can assert the
/// kill they scripted is the kill that happened.
pub const FAULT_EXIT_CODE: i32 = 42;

/// A deterministic script of injected failures. See the module docs.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Pool-claim ordinals (0-based, counted since arming) that panic.
    panic_jobs: BTreeSet<u64>,
    /// Step boundary at which [`FaultPlan::kill_if_due`] exits.
    kill_step: Option<u64>,
    /// Jobs claimed so far under this plan.
    claimed: AtomicU64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a disarmed baseline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Scripts a panic in the `ordinal`-th job (0-based) the armed pool
    /// claims after arming. Chainable.
    pub fn panic_on_job(mut self, ordinal: u64) -> Self {
        self.panic_jobs.insert(ordinal);
        self
    }

    /// Scripts a process kill at step boundary `step` (0-based),
    /// delivered by [`FaultPlan::kill_if_due`]. Chainable.
    pub fn kill_at_step(mut self, step: u64) -> Self {
        self.kill_step = Some(step);
        self
    }

    /// Draws `faults` distinct panic ordinals uniformly from
    /// `0..horizon` using a SplitMix64 stream — the same seed always
    /// yields the same plan, so any failure it uncovers replays
    /// exactly.
    pub fn seeded(seed: u64, horizon: u64, faults: usize) -> Self {
        assert!(horizon > 0, "fault horizon must be non-empty");
        let mut state = seed;
        let mut panic_jobs = BTreeSet::new();
        while panic_jobs.len() < faults.min(horizon as usize) {
            panic_jobs.insert(splitmix64(&mut state) % horizon);
        }
        Self {
            panic_jobs,
            kill_step: None,
            claimed: AtomicU64::new(0),
        }
    }

    /// The scripted panic ordinals, in increasing order.
    pub fn panic_ordinals(&self) -> Vec<u64> {
        self.panic_jobs.iter().copied().collect()
    }

    /// Counts one work unit against the plan and panics iff this
    /// unit's ordinal (0-based, cumulative since arming) is scripted.
    ///
    /// The worker pool calls this as each claimed job starts, inside
    /// its catch-unwind boundary; the serving layer calls it once per
    /// handled request inside *its* unwind boundary (a scripted
    /// ordinal then surfaces as a 500 on exactly that request). Any
    /// harness with a per-unit unwind boundary can arm a plan the same
    /// way.
    pub fn on_unit(&self) {
        let ordinal = self.claimed.fetch_add(1, Relaxed);
        if self.panic_jobs.contains(&ordinal) {
            panic!("injected fault: job ordinal {ordinal}");
        }
    }

    /// Whether a kill is scripted for `step`.
    pub fn should_kill_at(&self, step: u64) -> bool {
        self.kill_step == Some(step)
    }

    /// Exits the process with [`FAULT_EXIT_CODE`] iff a kill is
    /// scripted for `step`. Call between trainer steps, *after* any
    /// due checkpoint has been written, to simulate a crash at a step
    /// boundary.
    pub fn kill_if_due(&self, step: u64) {
        if self.should_kill_at(step) {
            eprintln!("fault plan: simulating crash at step boundary {step}");
            std::process::exit(FAULT_EXIT_CODE);
        }
    }
}

/// SplitMix64 (Steele et al.) — the workspace's standard seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_replay_exactly() {
        let a = FaultPlan::seeded(7, 100, 5);
        let b = FaultPlan::seeded(7, 100, 5);
        assert_eq!(a.panic_ordinals(), b.panic_ordinals());
        assert_eq!(a.panic_ordinals().len(), 5);
        assert!(a.panic_ordinals().iter().all(|&o| o < 100));
        let c = FaultPlan::seeded(8, 100, 5);
        assert_ne!(a.panic_ordinals(), c.panic_ordinals(), "seed must matter");
    }

    #[test]
    fn seeded_plan_caps_faults_at_horizon() {
        let plan = FaultPlan::seeded(3, 4, 100);
        assert_eq!(plan.panic_ordinals(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn kill_fires_only_at_the_scripted_step() {
        let plan = FaultPlan::new().kill_at_step(6);
        assert!(!plan.should_kill_at(5));
        assert!(plan.should_kill_at(6));
        assert!(!plan.should_kill_at(7));
        assert!(!FaultPlan::new().should_kill_at(0));
    }
}
