//! [`Published`]: a single-slot snapshot cell that is **lock-free for
//! readers**, built for read-mostly state that is replaced wholesale —
//! the serving layer's generation-tagged ranker snapshots (DESIGN.md
//! §5e).
//!
//! ## Why not `Mutex<Arc<T>>` or `RwLock<Arc<T>>`?
//!
//! The serving requirement is that *publishing a new snapshot never
//! stalls readers*: a retrain may take seconds, and even the brief
//! writer-side critical section of an `RwLock` would let a stream of
//! readers starve the publish (or, with writer priority, let the
//! publish block readers). Here readers never take a lock at all:
//!
//! * **read** — load the current pointer, advertise it in a *hazard
//!   slot*, and re-check the pointer; on agreement the snapshot is
//!   pinned for as long as the guard lives. The loop re-runs only if a
//!   publish raced in between, so the read path is lock-free (some
//!   reader always makes progress) and in the common case costs three
//!   atomic operations.
//! * **publish** — swap the pointer and move the old value onto a
//!   retire list; retired values are dropped on a later publish once no
//!   hazard slot advertises them. Publishing serializes writers on a
//!   `Mutex`, which is fine: there is one retrain at a time.
//!
//! Hazard slots live in an append-only lock-free list, acquired by CAS
//! and cached per [`ReadGuard`]; with `n` concurrent readers the list
//! holds at most `n` nodes for the life of the cell. Guards borrow the
//! cell, so the borrow checker rules out a guard outliving it.

use std::ops::Deref;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// One reader's advertisement: "I am dereferencing this pointer".
struct HazardSlot<T> {
    /// Pointer currently protected by the owning reader (null = none).
    protected: AtomicPtr<T>,
    /// Whether a reader currently owns this slot.
    in_use: AtomicBool,
    /// Next slot in the cell's append-only list.
    next: AtomicPtr<HazardSlot<T>>,
}

/// A published snapshot: readers pin the current value lock-free,
/// writers replace it wholesale with [`Published::publish`]. See the
/// module docs for the protocol.
pub struct Published<T> {
    /// The current value, as a raw `Arc` (`Arc::into_raw`).
    current: AtomicPtr<T>,
    /// Head of the append-only hazard-slot list.
    slots: AtomicPtr<HazardSlot<T>>,
    /// Swapped-out values awaiting quiescence, reclaimed on publish.
    retired: Mutex<Vec<*mut T>>,
}

// SAFETY: the cell hands out `&T` across threads (so `T: Sync`) and
// drops `T` on whichever thread publishes or drops the cell (so
// `T: Send`). The raw pointers are all managed through `Arc` and the
// hazard protocol.
unsafe impl<T: Send + Sync> Send for Published<T> {}
unsafe impl<T: Send + Sync> Sync for Published<T> {}

/// Pins one snapshot for the guard's lifetime; derefs to `&T`.
pub struct ReadGuard<'a, T> {
    slot: &'a HazardSlot<T>,
    ptr: *const T,
}

impl<T> Deref for ReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: `ptr` is advertised in `slot.protected`, so no
        // publish can reclaim it while this guard lives.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        self.slot
            .protected
            .store(ptr::null_mut(), Ordering::Release);
        self.slot.in_use.store(false, Ordering::Release);
    }
}

impl<T> Published<T> {
    /// A cell initially holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            current: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            slots: AtomicPtr::new(ptr::null_mut()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Claims a hazard slot: reuses a free one or appends a new node.
    fn acquire_slot(&self) -> &HazardSlot<T> {
        let mut node = self.slots.load(Ordering::Acquire);
        while !node.is_null() {
            // SAFETY: list nodes are never freed before the cell drops.
            let slot = unsafe { &*node };
            if slot
                .in_use
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return slot;
            }
            node = slot.next.load(Ordering::Acquire);
        }
        // All slots busy: append a fresh node (CAS loop on the head).
        let fresh = Box::into_raw(Box::new(HazardSlot {
            protected: AtomicPtr::new(ptr::null_mut()),
            in_use: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        loop {
            let head = self.slots.load(Ordering::Acquire);
            // SAFETY: `fresh` is ours until the CAS publishes it.
            unsafe { (*fresh).next.store(head, Ordering::Relaxed) };
            if self
                .slots
                .compare_exchange(head, fresh, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: now reachable and never freed until cell drop.
                return unsafe { &*fresh };
            }
        }
    }

    /// Pins the current snapshot. Lock-free: retries only when a
    /// publish races the pin, and some thread always makes progress.
    pub fn read(&self) -> ReadGuard<'_, T> {
        let slot = self.acquire_slot();
        loop {
            let ptr = self.current.load(Ordering::SeqCst);
            slot.protected.store(ptr, Ordering::SeqCst);
            // Re-check: if the pointer is still current, any publish
            // that retires it must subsequently scan the hazard list
            // (both operations are SeqCst, so the scan sees our store)
            // and will keep the value alive until this guard drops.
            if self.current.load(Ordering::SeqCst) == ptr {
                return ReadGuard { slot, ptr };
            }
        }
    }

    /// Clones out an owning handle to the current snapshot (for callers
    /// that must hold it across `await`-like boundaries or store it).
    pub fn load(&self) -> Arc<T> {
        let guard = self.read();
        // SAFETY: the guard pins `ptr`, so the strong count is ≥ 1 for
        // the whole bump; the raw pointer came from `Arc::into_raw`.
        unsafe {
            Arc::increment_strong_count(guard.ptr);
            Arc::from_raw(guard.ptr)
        }
    }

    /// Replaces the snapshot. In-flight readers keep the value they
    /// pinned; it is reclaimed by a later publish (or cell drop) once
    /// no hazard slot advertises it. Returns the number of retired
    /// values still awaiting quiescent readers.
    pub fn publish(&self, value: Arc<T>) -> usize {
        let fresh = Arc::into_raw(value) as *mut T;
        let old = self.current.swap(fresh, Ordering::SeqCst);
        let mut retired = self.retired.lock().unwrap();
        retired.push(old);
        self.reclaim(&mut retired);
        retired.len()
    }

    /// Values swapped out but still pinned by some reader.
    pub fn retired_count(&self) -> usize {
        let mut retired = self.retired.lock().unwrap();
        self.reclaim(&mut retired);
        retired.len()
    }

    /// Drops every retired value no hazard slot advertises.
    fn reclaim(&self, retired: &mut Vec<*mut T>) {
        let mut hazards = Vec::new();
        let mut node = self.slots.load(Ordering::SeqCst);
        while !node.is_null() {
            // SAFETY: list nodes live until the cell drops.
            let slot = unsafe { &*node };
            let protected = slot.protected.load(Ordering::SeqCst);
            if !protected.is_null() {
                hazards.push(protected);
            }
            node = slot.next.load(Ordering::Acquire);
        }
        retired.retain(|&old| {
            if hazards.contains(&old) {
                true
            } else {
                // SAFETY: `old` came from `Arc::into_raw` in `publish`
                // and no reader advertises it, so this drop releases
                // the cell's sole reference.
                unsafe { drop(Arc::from_raw(old)) };
                false
            }
        });
    }
}

/// A fixed array of [`Published`] cells, one per serving shard, that
/// can be replaced **atomically per shard** in one sweep: readers pin
/// their own shard's cell lock-free and never observe a cell mid-swap,
/// while [`ShardedPublished::publish_all`] walks the shards installing
/// the same `Arc` (cheap pointer clones — the snapshot itself is
/// shared, not duplicated per shard).
///
/// The cross-shard guarantee is intentionally *per cell*, not global:
/// a reader of shard 0 and a reader of shard 1 may briefly observe
/// different generations while a sweep is in flight, but each
/// individual read is a consistent, generation-tagged snapshot, and
/// sweeps are serialized by the caller (the serving layer's retrain
/// lock), so generations never move backwards on any shard.
pub struct ShardedPublished<T> {
    cells: Box<[Published<T>]>,
}

impl<T> ShardedPublished<T> {
    /// `n` cells (min 1), all initially holding `value`.
    pub fn new(n: usize, value: Arc<T>) -> Self {
        let n = n.max(1);
        let cells: Vec<Published<T>> = (0..n).map(|_| Published::new(Arc::clone(&value))).collect();
        Self {
            cells: cells.into_boxed_slice(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        false // never constructed with zero cells
    }

    /// The cell for `shard` (callers compute shard ownership).
    pub fn shard(&self, shard: usize) -> &Published<T> {
        &self.cells[shard]
    }

    /// Pins `shard`'s current snapshot, lock-free.
    pub fn read(&self, shard: usize) -> ReadGuard<'_, T> {
        self.cells[shard].read()
    }

    /// Installs `value` into every shard cell, one atomic swap per
    /// cell. Returns the total count of retired snapshots still pinned
    /// by in-flight readers across all shards.
    pub fn publish_all(&self, value: Arc<T>) -> usize {
        self.cells
            .iter()
            .map(|cell| cell.publish(Arc::clone(&value)))
            .sum()
    }
}

impl<T> Drop for Published<T> {
    fn drop(&mut self) {
        // `&mut self` proves no guard is alive (guards borrow the
        // cell), so everything can be released unconditionally.
        let current = *self.current.get_mut();
        // SAFETY: the cell's own reference, no readers remain.
        unsafe { drop(Arc::from_raw(current)) };
        for &old in self.retired.get_mut().unwrap().iter() {
            // SAFETY: as above; retired values are uniquely ours now.
            unsafe { drop(Arc::from_raw(old)) };
        }
        let mut node = *self.slots.get_mut();
        while !node.is_null() {
            // SAFETY: nodes were leaked from `Box::into_raw` and are
            // only reachable through this cell.
            let slot = unsafe { Box::from_raw(node) };
            node = slot.next.load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::atomic::Ordering::Relaxed;

    /// Counts drops so reclamation is observable.
    struct Tracked {
        generation: u64,
        double: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Tracked {
        fn new(generation: u64, drops: &Arc<AtomicUsize>) -> Arc<Self> {
            Arc::new(Self {
                generation,
                double: generation * 2,
                drops: Arc::clone(drops),
            })
        }
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Relaxed);
        }
    }

    #[test]
    fn read_sees_latest_publish() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Published::new(Tracked::new(0, &drops));
        assert_eq!(cell.read().generation, 0);
        cell.publish(Tracked::new(1, &drops));
        assert_eq!(cell.read().generation, 1);
        assert_eq!(cell.load().generation, 1);
    }

    #[test]
    fn publish_reclaims_unpinned_values() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Published::new(Tracked::new(0, &drops));
        cell.publish(Tracked::new(1, &drops));
        cell.publish(Tracked::new(2, &drops));
        // Generations 0 and 1 had no readers: both reclaimed by now.
        assert_eq!(drops.load(Relaxed), 2);
        assert_eq!(cell.retired_count(), 0);
    }

    #[test]
    fn pinned_value_survives_publish_until_guard_drops() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Published::new(Tracked::new(0, &drops));
        let guard = cell.read();
        cell.publish(Tracked::new(1, &drops));
        // Generation 0 is pinned: not dropped, still readable.
        assert_eq!(drops.load(Relaxed), 0);
        assert_eq!(guard.generation, 0);
        assert_eq!(cell.retired_count(), 1);
        drop(guard);
        assert_eq!(cell.retired_count(), 0);
        assert_eq!(drops.load(Relaxed), 1);
    }

    #[test]
    fn loaded_arc_outlives_subsequent_publishes() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Published::new(Tracked::new(0, &drops));
        let held = cell.load();
        cell.publish(Tracked::new(1, &drops));
        assert_eq!(cell.retired_count(), 0, "load() took an owning ref");
        assert_eq!(held.generation, 0);
        drop(held);
        assert_eq!(drops.load(Relaxed), 1);
    }

    #[test]
    fn cell_drop_releases_everything() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let cell = Published::new(Tracked::new(0, &drops));
            let _pin_forces_retire = {
                let guard = cell.read();
                cell.publish(Tracked::new(1, &drops));
                guard.generation
            };
            cell.publish(Tracked::new(2, &drops));
        }
        assert_eq!(drops.load(Relaxed), 3);
    }

    #[test]
    fn sharded_cells_publish_one_arc_to_every_shard() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cells = ShardedPublished::new(4, Tracked::new(0, &drops));
        assert_eq!(cells.len(), 4);
        for s in 0..4 {
            assert_eq!(cells.read(s).generation, 0);
        }
        // A pinned shard-2 reader survives the sweep; other shards see
        // the new generation immediately.
        let pinned = cells.read(2);
        let retired = cells.publish_all(Tracked::new(1, &drops));
        assert_eq!(retired, 1, "only the pinned shard's old value is retired");
        assert_eq!(cells.read(0).generation, 1);
        assert_eq!(cells.read(3).generation, 1);
        assert_eq!(pinned.generation, 0);
        drop(pinned);
        // One Tracked value per generation, shared by all shards: the
        // sweep retires N references but only ever drops one value.
        drop(cells);
        assert_eq!(drops.load(Relaxed), 2);
    }

    #[test]
    fn sharded_zero_is_clamped_to_one() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cells = ShardedPublished::new(0, Tracked::new(7, &drops));
        assert_eq!(cells.len(), 1);
        assert!(!cells.is_empty());
        assert_eq!(cells.shard(0).read().generation, 7);
    }

    #[test]
    fn concurrent_readers_never_see_torn_snapshots() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(Published::new(Tracked::new(1, &drops)));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        let guard = cell.read();
                        // The invariant binds the two fields together:
                        // a torn or reclaimed snapshot would break it.
                        assert_eq!(guard.double, guard.generation * 2);
                    }
                })
            })
            .collect();
        for generation in 2..500 {
            cell.publish(Tracked::new(generation, &drops));
        }
        for reader in readers {
            reader.join().expect("reader panicked");
        }
        assert_eq!(cell.retired_count(), 0);
    }
}
