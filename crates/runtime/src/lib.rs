//! # runtime
//!
//! The workspace's shared execution runtime: a persistent
//! [`WorkerPool`] that fans independent jobs out over long-lived worker
//! threads, plus the [`run_parallel`] convenience used by the
//! experiment binaries.
//!
//! ## Design
//!
//! One pool, many batches. Every [`WorkerPool::run`] call forms a
//! *batch*: an ordered job list plus a result slot per job. The batch
//! enqueues up to `threads - 1` *runner* tasks onto the pool's shared
//! queue and the calling thread acts as the final runner, so
//!
//! * `threads == 1` is exactly sequential execution on the caller —
//!   no queue traffic, no worker involvement;
//! * a job may itself call [`WorkerPool::run`] (nested batches): the
//!   nesting thread drives its own batch to completion, so progress
//!   never depends on free workers and nesting cannot deadlock;
//! * results come back in job order regardless of which thread ran
//!   what, and a panicking job is re-raised on the caller after the
//!   whole batch has settled.
//!
//! Worker threads are spawned once (see [`global`]) and reused across
//! batches — the per-step fan-out in `PoisonRecTrainer` pays thread
//! startup cost once per process, not once per training step.
//!
//! ## Telemetry
//!
//! The pool reports into the global [`telemetry`] registry:
//! `runtime_jobs_total` (jobs executed, on any thread),
//! `runtime_batches_total` / `runtime_batch_seconds` (per-`run` count
//! and wall time), and the `runtime_queue_depth` gauge (helper runners
//! currently parked in the shared queue). All are atomics on the
//! already-cold batch paths; job results are unaffected.
//!
//! When hierarchical tracing is enabled (`telemetry::trace`), every
//! `run` opens a `batch` span on the caller's track and every claimed
//! job a `job` span on whichever thread ran it — so worker activity
//! shows up on per-worker tracks in the Chrome trace (DESIGN.md §5d).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

pub mod fault;
pub mod swap;

pub use fault::{FaultPlan, FAULT_EXIT_CODE};
pub use swap::{Published, ReadGuard, ShardedPublished};

/// Something an off-thread task can nudge when it finishes — typically
/// an event loop parked in a poller. Implementations must be cheap,
/// idempotent, and panic-free (a waker that panics would unseat the
/// pool worker's unwind containment).
pub trait Wake: Send + Sync {
    fn wake(&self);
}

/// Fires the waker exactly once on drop — the task completion signal
/// survives panics inside the task body.
struct WakeOnDrop(Arc<dyn Wake>);

impl Drop for WakeOnDrop {
    fn drop(&mut self) {
        self.0.wake();
    }
}

/// A job as the pool queue sees it: a type- and lifetime-erased runner.
type QueueTask = Box<dyn FnOnce() + Send + 'static>;

/// A caller-supplied job: runs once, yields a `T`, may borrow `'env`.
pub type Job<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

struct PoolQueue {
    tasks: VecDeque<QueueTask>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_ready: Condvar,
    /// Armed fault-injection script, consulted as each job starts.
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

/// A persistent pool of worker threads executing batches of independent
/// jobs. See the module docs for the batch/runner model.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

/// Per-batch bookkeeping shared between the caller and its runners.
struct Batch<'env, T> {
    /// Unclaimed jobs; runners claim indices through `next`.
    jobs: Vec<Mutex<Option<Job<'env, T>>>>,
    next: AtomicUsize,
    /// One slot per job, filled in job order.
    slots: Vec<Mutex<Option<T>>>,
    /// Jobs not yet completed; guards batch completion.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload observed, re-raised on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Fault script captured from the pool when the batch formed.
    faults: Option<Arc<FaultPlan>>,
}

impl<T: Send> Batch<'_, T> {
    /// Claims and executes jobs until none are left. Runs on workers
    /// and on the calling thread alike.
    fn drive(&self) {
        loop {
            let i = self.next.fetch_add(1, Relaxed);
            if i >= self.jobs.len() {
                return;
            }
            let job = self.jobs[i]
                .lock()
                .unwrap()
                .take()
                .expect("job claimed twice");
            telemetry::metrics::counter("runtime_jobs_total").inc();
            // The injected fault fires inside the same unwind boundary
            // as the job, so it takes exactly the production panic
            // path: first payload recorded, batch settles, caller
            // re-raises.
            let faults = self.faults.clone();
            let run = move || {
                // On a worker the span lands on that worker's trace
                // track ("runtime-worker-N"); on the caller-helps lane
                // it nests under whatever span the caller has open.
                let _job_span = telemetry::trace::span("job", "runtime");
                if let Some(plan) = &faults {
                    plan.on_unit();
                }
                job()
            };
            match catch_unwind(AssertUnwindSafe(run)) {
                Ok(value) => *self.slots[i].lock().unwrap() = Some(value),
                Err(payload) => {
                    self.panic.lock().unwrap().get_or_insert(payload);
                }
            }
            let mut remaining = self.remaining.lock().unwrap();
            *remaining -= 1;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` background threads. Zero workers is
    /// valid: every batch then runs inline on its calling thread.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            faults: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("runtime-worker-{i}"))
                    .spawn(move || loop {
                        let task = {
                            let mut queue = shared.queue.lock().unwrap();
                            loop {
                                if let Some(task) = queue.tasks.pop_front() {
                                    telemetry::metrics::gauge("runtime_queue_depth").sub(1);
                                    break Some(task);
                                }
                                if queue.shutdown {
                                    break None;
                                }
                                queue = shared.work_ready.wait(queue).unwrap();
                            }
                        };
                        match task {
                            Some(task) => task(),
                            None => return,
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Number of background worker threads (the caller adds one more
    /// lane of concurrency on top during `run`).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Arms a deterministic [`FaultPlan`] on this pool: every job any
    /// subsequent batch claims is counted against the plan, and
    /// scripted ordinals panic inside the job's unwind boundary.
    /// Testing-only by intent; arming is per-pool so parallel tests on
    /// their own pools never interfere.
    pub fn arm_faults(&self, plan: Arc<FaultPlan>) {
        *self.shared.faults.lock().unwrap() = Some(plan);
    }

    /// Removes any armed [`FaultPlan`]; in-flight batches keep the plan
    /// they captured at formation.
    pub fn disarm_faults(&self) {
        *self.shared.faults.lock().unwrap() = None;
    }

    #[cfg(test)]
    fn queued_tasks(&self) -> usize {
        self.shared.queue.lock().unwrap().tasks.len()
    }

    /// Enqueues a detached, fire-and-forget task on the pool's workers.
    ///
    /// Unlike [`WorkerPool::run`], the caller does not wait: the task
    /// runs whenever a worker frees up, and the pool's `Drop` joins it
    /// (workers drain the queue before exiting). The serving layer uses
    /// this for per-connection handlers, so long-lived tasks should
    /// poll their own shutdown signal. A panicking task is caught and
    /// counted (`runtime_detached_panics_total`) rather than killing
    /// its worker thread. On a pool with zero workers the task runs
    /// inline, to completion, before `spawn` returns.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let wrapped: QueueTask = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                telemetry::metrics::counter("runtime_detached_panics_total").inc();
            }
        });
        if self.workers.is_empty() {
            // No worker will ever pop the queue; run inline (mirrors
            // the zero-worker `run` contract).
            wrapped();
            return;
        }
        let mut queue = self.shared.queue.lock().unwrap();
        queue.tasks.push_back(wrapped);
        telemetry::metrics::gauge("runtime_queue_depth").add(1);
        drop(queue);
        self.shared.work_ready.notify_one();
    }

    /// Like [`WorkerPool::spawn`], but guarantees `waker.wake()` fires
    /// after the task settles — completion or panic alike. The serving
    /// event loop hands its poller waker here so a handler finishing on
    /// a pool worker always kicks the parked loop, even when the
    /// handler's unwind boundary just absorbed a panic.
    pub fn spawn_waking(&self, task: impl FnOnce() + Send + 'static, waker: Arc<dyn Wake>) {
        self.spawn(move || {
            let _wake = WakeOnDrop(waker);
            task();
        });
    }

    /// Runs `jobs` with at most `threads` of them in flight at once,
    /// returning results in job order. The calling thread always
    /// executes jobs itself; `threads - 1` runners are offered to the
    /// background workers. Panics in jobs are re-raised here once the
    /// batch has settled.
    pub fn run<'env, T: Send + 'env>(
        &self,
        threads: usize,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        telemetry::metrics::counter("runtime_batches_total").inc();
        let _batch_span = telemetry::Span::enter("runtime_batch_seconds");
        let _batch_trace = telemetry::trace::span("batch", "runtime");
        let threads = threads.max(1).min(n);
        let batch = Arc::new(Batch {
            jobs: jobs.into_iter().map(|j| Mutex::new(Some(j))).collect(),
            next: AtomicUsize::new(0),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
            faults: self.shared.faults.lock().unwrap().clone(),
        });

        // Never enqueue more runners than workers exist: a surplus
        // runner on a saturated pool is eventually popped and becomes a
        // cheap no-op, but on a small pool it would sit in the queue
        // forever (the caller finishes the batch alone).
        let runners = (threads - 1).min(self.workers.len());
        if runners > 0 {
            let mut queue = self.shared.queue.lock().unwrap();
            for _ in 0..runners {
                let runner = Arc::clone(&batch);
                let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || runner.drive());
                // SAFETY: `run` does not return until `remaining == 0`,
                // i.e. every job has finished; a runner outliving that
                // point only performs the bounds check in `drive` (all
                // indices claimed) and drops an Arc whose slots and job
                // cells have already been emptied, so no `'env` data is
                // ever touched after `'env` ends.
                let task: QueueTask = unsafe { std::mem::transmute(task) };
                queue.tasks.push_back(task);
            }
            telemetry::metrics::gauge("runtime_queue_depth").add(runners as i64);
            drop(queue);
            self.shared.work_ready.notify_all();
        }

        batch.drive();
        let mut remaining = batch.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).unwrap();
        }
        drop(remaining);

        if let Some(payload) = batch.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        batch
            .slots
            .iter()
            .map(|slot| slot.lock().unwrap().take().expect("job completed"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide shared pool, sized to the machine (`cores - 1`
/// workers — the thread calling [`WorkerPool::run`] is the final
/// lane). Everything that fans out — trainer scoring batches,
/// experiment cells — shares these workers, so total thread count
/// stays bounded no matter how the fan-outs nest.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(default_parallelism().saturating_sub(1)))
}

/// Hardware parallelism, with a fallback for exotic platforms.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs `jobs` on the [`global`] pool with at most `threads` in flight,
/// preserving job order in the results.
pub fn run_parallel<T: Send>(threads: usize, jobs: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
    global().run(threads, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn jobs_squaring(n: usize) -> Vec<Box<dyn FnOnce() -> usize + Send>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect()
    }

    #[test]
    fn preserves_order_across_thread_counts() {
        let expected: Vec<usize> = (0..40).map(|i| i * i).collect();
        for threads in [1, 2, 8, 64] {
            let pool = WorkerPool::new(4);
            assert_eq!(pool.run(threads, jobs_squaring(40)), expected);
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 0);
        assert_eq!(
            pool.run(8, jobs_squaring(10)),
            (0..10).map(|i| i * i).collect::<Vec<_>>()
        );
        // No runners may be parked in the queue (they would never be
        // popped without workers — an unbounded leak across batches).
        assert_eq!(pool.queued_tasks(), 0);
    }

    #[test]
    fn borrows_non_static_data() {
        let data: Vec<u64> = (0..100).collect();
        let sums = AtomicU64::new(0);
        let pool = WorkerPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = data
            .chunks(10)
            .map(|chunk| {
                let sums = &sums;
                Box::new(move || {
                    let s: u64 = chunk.iter().sum();
                    sums.fetch_add(s, Relaxed);
                    s
                }) as Box<dyn FnOnce() -> u64 + Send + '_>
            })
            .collect();
        let per_chunk = pool.run(4, jobs);
        assert_eq!(per_chunk.iter().sum::<u64>(), 4950);
        assert_eq!(sums.load(Relaxed), 4950);
    }

    #[test]
    fn nested_batches_make_progress() {
        // A single-worker pool where every outer job immediately fans
        // out again: only caller-helps execution can finish this.
        let pool = WorkerPool::new(1);
        let outer: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6)
            .map(|i| {
                Box::new(move || {
                    let inner = global().run(4, jobs_squaring(8));
                    inner.iter().sum::<usize>() + i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = pool.run(6, outer);
        let inner_sum: usize = (0..8).map(|i| i * i).sum();
        assert_eq!(results, (0..6).map(|i| inner_sum + i).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_after_batch_settles() {
        let pool = WorkerPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..10usize)
            .map(|i| {
                let finished = Arc::clone(&finished);
                Box::new(move || {
                    if i == 3 {
                        panic!("job 3 exploded");
                    }
                    finished.fetch_add(1, Relaxed);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run(4, jobs)));
        assert!(caught.is_err());
        // Every non-panicking job still ran to completion.
        assert_eq!(finished.load(Relaxed), 9);
    }

    #[test]
    fn pool_reports_job_metrics() {
        // Other tests in this process share the global registry, so
        // only the monotone delta is asserted.
        let jobs = telemetry::metrics::counter("runtime_jobs_total");
        let batches = telemetry::metrics::counter("runtime_batches_total");
        let (jobs_before, batches_before) = (jobs.get(), batches.get());
        let pool = WorkerPool::new(2);
        pool.run(3, jobs_squaring(12));
        assert!(jobs.get() >= jobs_before + 12);
        assert!(batches.get() > batches_before);
        let snap = telemetry::metrics::snapshot();
        assert!(snap.counter("runtime_jobs_total").expect("registered") >= jobs_before + 12);
    }

    #[test]
    fn injected_faults_take_the_production_panic_path() {
        // A scripted fault must behave exactly like a real job panic:
        // every other job completes, the first injected payload is
        // re-raised on the caller, and the pool remains usable.
        let pool = WorkerPool::new(2);
        pool.arm_faults(Arc::new(FaultPlan::new().panic_on_job(3).panic_on_job(7)));
        let finished = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..12usize)
            .map(|i| {
                let finished = Arc::clone(&finished);
                Box::new(move || {
                    finished.fetch_add(1, Relaxed);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run(4, jobs)));
        let payload = caught.expect_err("scripted faults must surface");
        let message = payload
            .downcast_ref::<String>()
            .expect("injected fault panics with a String");
        assert!(message.contains("injected fault"), "{message}");
        // Exactly the two scripted ordinals were suppressed.
        assert_eq!(finished.load(Relaxed), 10);

        // Disarmed, the same pool runs clean batches again.
        pool.disarm_faults();
        assert_eq!(
            pool.run(4, jobs_squaring(9)),
            (0..9).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn armed_pool_counts_jobs_across_batches() {
        // Ordinals are cumulative since arming, so a plan can target a
        // job deep into a multi-batch run.
        let pool = WorkerPool::new(1);
        pool.arm_faults(Arc::new(FaultPlan::new().panic_on_job(5)));
        assert_eq!(pool.run(2, jobs_squaring(4)), vec![0, 1, 4, 9]);
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run(2, jobs_squaring(4))));
        assert!(caught.is_err(), "ordinal 5 falls in the second batch");
    }

    #[test]
    fn spawned_tasks_complete_before_pool_drop() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..16 {
                let hits = Arc::clone(&hits);
                pool.spawn(move || {
                    hits.fetch_add(1, Relaxed);
                });
            }
            // `Drop` joins the workers after they drain the queue.
        }
        assert_eq!(hits.load(Relaxed), 16);
    }

    #[test]
    fn spawn_on_zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let hits = Arc::new(AtomicUsize::new(0));
        let witness = Arc::clone(&hits);
        pool.spawn(move || {
            witness.fetch_add(1, Relaxed);
        });
        assert_eq!(hits.load(Relaxed), 1, "inline fallback must have run");
        assert_eq!(pool.queued_tasks(), 0);
    }

    #[test]
    fn spawned_panic_is_contained() {
        let panics = telemetry::metrics::counter("runtime_detached_panics_total");
        let before = panics.get();
        let pool = WorkerPool::new(1);
        pool.spawn(|| panic!("detached task exploded"));
        // The spawn is detached, so wait for the worker to hit it
        // before asserting the counter moved.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while panics.get() == before && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(panics.get() > before, "detached panic was never recorded");
        // The worker survives: batches still run on it afterwards.
        assert_eq!(pool.run(2, jobs_squaring(5)), vec![0, 1, 4, 9, 16]);
    }

    struct CountingWaker(AtomicUsize);

    impl Wake for CountingWaker {
        fn wake(&self) {
            self.0.fetch_add(1, Relaxed);
        }
    }

    #[test]
    fn spawn_waking_fires_the_waker_after_the_task() {
        let waker = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            let witness = Arc::clone(&ran);
            pool.spawn_waking(
                move || {
                    witness.fetch_add(1, Relaxed);
                },
                Arc::clone(&waker) as Arc<dyn Wake>,
            );
        }
        assert_eq!(ran.load(Relaxed), 1);
        assert_eq!(waker.0.load(Relaxed), 1);
    }

    #[test]
    fn spawn_waking_fires_even_when_the_task_panics() {
        let waker = Arc::new(CountingWaker(AtomicUsize::new(0)));
        {
            let pool = WorkerPool::new(1);
            pool.spawn_waking(|| panic!("boom"), Arc::clone(&waker) as Arc<dyn Wake>);
        }
        assert_eq!(waker.0.load(Relaxed), 1, "wake must survive the panic");
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..20 {
            let out = pool.run(3, jobs_squaring(round));
            assert_eq!(out.len(), round);
        }
    }
}
