//! Property-based tests of the autodiff substrate: algebraic identities
//! that must hold for arbitrary shapes and values.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{GradStore, Graph, Matrix, ParamSet};

fn mat(rows: usize, cols: usize, seed: u64, scale: f32) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::uniform(rows, cols, scale, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A B) C == A (B C) within f32 tolerance.
    #[test]
    fn matmul_is_associative(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, p in 1usize..6, seed in 0u64..1000
    ) {
        let a = mat(m, k, seed, 1.0);
        let b = mat(k, n, seed + 1, 1.0);
        let c = mat(n, p, seed + 2, 1.0);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn transpose_reverses_products(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000
    ) {
        let a = mat(m, k, seed, 1.0);
        let b = mat(k, n, seed + 9, 1.0);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Gradient of sum(A ⊙ B) w.r.t. A equals B exactly.
    #[test]
    fn mul_gradient_is_the_other_operand(
        r in 1usize..6, c in 1usize..6, seed in 0u64..1000
    ) {
        let mut params = ParamSet::new();
        let a = params.add("a", mat(r, c, seed, 1.0));
        let b_val = mat(r, c, seed + 3, 1.0);
        let mut grads = GradStore::zeros_like(&params);
        let mut g = Graph::new(&params);
        let av = g.param(a);
        let bv = g.input(b_val.clone());
        let prod = g.mul(av, bv);
        let loss = g.sum_all(prod);
        g.backward(loss, &mut grads);
        for (x, y) in grads.get(a).data().iter().zip(b_val.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Backward of a linear chain is itself linear: doubling the seed
    /// weight doubles every parameter gradient.
    #[test]
    fn backward_weighted_is_linear(
        r in 1usize..5, c in 1usize..5, seed in 0u64..1000, w in 0.1f32..4.0
    ) {
        let mut params = ParamSet::new();
        let a = params.add("a", mat(r, c, seed, 1.0));
        let mut g1 = GradStore::zeros_like(&params);
        let mut g2 = GradStore::zeros_like(&params);
        let mut g = Graph::new(&params);
        let av = g.param(a);
        let t = g.tanh(av);
        let loss = g.sq_sum(t);
        g.backward(loss, &mut g1);
        g.backward_weighted(loss, w, &mut g2);
        for (x, y) in g1.get(a).data().iter().zip(g2.get(a).data()) {
            prop_assert!((w * x - y).abs() < 1e-4 * (1.0 + x.abs()));
        }
    }

    /// Row-softmax of log_softmax output sums to 1 per row.
    #[test]
    fn log_softmax_rows_normalizes(
        r in 1usize..6, c in 1usize..8, seed in 0u64..1000
    ) {
        let params = ParamSet::new();
        let mut g = Graph::new(&params);
        let x = g.input(mat(r, c, seed, 3.0));
        let lp = g.log_softmax_rows(x);
        let v = g.value(lp);
        for row in 0..r {
            let total: f32 = v.row_slice(row).iter().map(|&l| l.exp()).sum();
            prop_assert!((total - 1.0).abs() < 1e-4, "row {row} sums to {total}");
        }
    }

    /// softmax + sample_categorical never panics and respects support.
    #[test]
    fn categorical_sampling_in_range(
        logits in prop::collection::vec(-20.0f32..20.0, 1..40),
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (idx, lp) = tensor::util::sample_categorical(&logits, &mut rng);
        prop_assert!(idx < logits.len());
        prop_assert!(lp <= 1e-6 && lp.is_finite());
    }
}
