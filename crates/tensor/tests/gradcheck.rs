//! Finite-difference verification of every autodiff operation.
//!
//! For each op we build a small scalar-valued graph over random
//! parameters and compare the analytic gradient with central finite
//! differences. An op only enters the library once it passes here.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::nn::{Activation, GruCell, LstmCell, Mlp};
use tensor::sparse::Csr;
use tensor::{GradStore, Graph, Matrix, ParamSet, Var};

const EPS: f32 = 1e-3;
/// Relative tolerance: f32 finite differences are noisy, so we accept
/// 2% relative error with a small absolute floor.
const REL_TOL: f32 = 2e-2;
const ABS_TOL: f32 = 2e-4;

/// Checks d(loss)/d(param) for every parameter against central
/// finite differences.
fn gradcheck(params: &mut ParamSet, build: impl Fn(&mut Graph<'_>) -> Var) {
    // Analytic gradients.
    let mut grads = GradStore::zeros_like(params);
    {
        let mut g = Graph::new(params);
        let loss = build(&mut g);
        assert_eq!(g.value(loss).shape(), (1, 1), "loss must be scalar");
        g.backward(loss, &mut grads);
    }

    let eval = |params: &ParamSet| -> f32 {
        let mut g = Graph::new(params);
        let loss = build(&mut g);
        g.value(loss).at(0, 0)
    };

    for i in 0..params.len() {
        let id = params.iter().nth(i).expect("in range").0;
        let n_entries = params.get(id).len();
        for e in 0..n_entries {
            let orig = params.get(id).data()[e];
            params.get_mut(id).data_mut()[e] = orig + EPS;
            let up = eval(params);
            params.get_mut(id).data_mut()[e] = orig - EPS;
            let down = eval(params);
            params.get_mut(id).data_mut()[e] = orig;
            let numeric = (up - down) / (2.0 * EPS);
            let analytic = grads.get(id).data()[e];
            let denom = numeric.abs().max(analytic.abs()).max(1.0);
            assert!(
                (numeric - analytic).abs() <= REL_TOL * denom + ABS_TOL,
                "param {} entry {e}: analytic {analytic} vs numeric {numeric}",
                params.name(id),
            );
        }
    }
}

fn rng() -> StdRng {
    StdRng::seed_from_u64(0xD15EA5E)
}

#[test]
fn matmul_chain() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let a = params.add("a", Matrix::uniform(2, 3, 0.8, &mut rng));
    let b = params.add("b", Matrix::uniform(3, 4, 0.8, &mut rng));
    gradcheck(&mut params, |g| {
        let av = g.param(a);
        let bv = g.param(b);
        let y = g.matmul(av, bv);
        g.sq_sum(y)
    });
}

#[test]
fn matmul_t_against_table() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let h = params.add("h", Matrix::uniform(2, 4, 0.8, &mut rng));
    let table = params.add("table", Matrix::uniform(5, 4, 0.8, &mut rng));
    gradcheck(&mut params, |g| {
        let hv = g.param(h);
        let tv = g.param(table);
        let logits = g.matmul_t(hv, tv); // 2 x 5
        let lp = g.log_softmax_rows(logits);
        let picked = g.pick_per_row(lp, &[3, 0]);
        let s = g.sum_all(picked);
        g.scale(s, -1.0)
    });
}

#[test]
fn add_broadcast_and_sub() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let x = params.add("x", Matrix::uniform(3, 4, 0.8, &mut rng));
    let bias = params.add("bias", Matrix::uniform(1, 4, 0.8, &mut rng));
    let y = params.add("y", Matrix::uniform(3, 4, 0.8, &mut rng));
    gradcheck(&mut params, |g| {
        let xv = g.param(x);
        let bv = g.param(bias);
        let yv = g.param(y);
        let xb = g.add(xv, bv);
        let d = g.sub(xb, yv);
        g.sq_sum(d)
    });
}

#[test]
fn elementwise_mul_scale_addscalar() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let x = params.add("x", Matrix::uniform(2, 3, 0.8, &mut rng));
    let y = params.add("y", Matrix::uniform(2, 3, 0.8, &mut rng));
    gradcheck(&mut params, |g| {
        let xv = g.param(x);
        let yv = g.param(y);
        let m = g.mul(xv, yv);
        let s = g.scale(m, 1.7);
        let a = g.add_scalar(s, 0.3);
        g.sq_sum(a)
    });
}

#[test]
fn activations() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    // Keep values away from the ReLU kink where finite differences lie.
    let x = params.add(
        "x",
        Matrix::from_fn(2, 4, |r, c| 0.35 + 0.2 * (r as f32) - 0.45 * (c as f32)),
    );
    let _ = &mut rng;
    gradcheck(&mut params, |g| {
        let xv = g.param(x);
        let r = g.relu(xv);
        let l = g.leaky_relu(r, 0.2);
        let sgm = g.sigmoid(l);
        let t = g.tanh(sgm);
        let sp = g.softplus(t);
        g.sum_all(sp)
    });
}

#[test]
fn concat_ops() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let a = params.add("a", Matrix::uniform(2, 3, 0.8, &mut rng));
    let b = params.add("b", Matrix::uniform(2, 2, 0.8, &mut rng));
    let c = params.add("c", Matrix::uniform(1, 5, 0.8, &mut rng));
    gradcheck(&mut params, |g| {
        let av = g.param(a);
        let bv = g.param(b);
        let cv = g.param(c);
        let ab = g.concat_cols(av, bv); // 2 x 5
        let abc = g.concat_rows(ab, cv); // 3 x 5
        let t = g.tanh(abc);
        g.sq_sum(t)
    });
}

#[test]
fn reductions_mean_and_sqsum() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let x = params.add("x", Matrix::uniform(3, 3, 0.8, &mut rng));
    gradcheck(&mut params, |g| {
        let xv = g.param(x);
        let m = g.mean_all(xv);
        let sq = g.sq_sum(xv);
        let sum = g.add(m, sq);
        g.sum_all(sum)
    });
}

#[test]
fn gather_embeddings() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let table = params.add("emb", Matrix::uniform(6, 4, 0.8, &mut rng));
    gradcheck(&mut params, |g| {
        // Repeated index 2 exercises gradient accumulation in scatter.
        let e = g.gather(table, &[2, 5, 2, 0]);
        let t = g.tanh(e);
        g.sq_sum(t)
    });
}

#[test]
fn spmm_dense_gradient() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let x = params.add("x", Matrix::uniform(4, 3, 0.8, &mut rng));
    let sp = Arc::new(Csr::from_triples(
        5,
        4,
        &[
            (0, 1, 0.5),
            (1, 0, -1.0),
            (2, 3, 2.0),
            (4, 2, 0.7),
            (4, 0, 0.1),
        ],
    ));
    gradcheck(&mut params, |g| {
        let xv = g.param(x);
        let y = g.spmm(Arc::clone(&sp), xv);
        let t = g.leaky_relu(y, 0.2);
        g.sq_sum(t)
    });
}

#[test]
fn bce_with_logits_loss() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let x = params.add("logits", Matrix::uniform(3, 4, 1.5, &mut rng));
    let targets = Matrix::from_fn(3, 4, |r, c| ((r + c) % 2) as f32);
    let mask = Matrix::from_fn(3, 4, |r, c| if (r * 4 + c) % 3 == 0 { 0.0 } else { 1.0 });
    gradcheck(&mut params, move |g| {
        let xv = g.param(x);
        g.bce_with_logits(xv, targets.clone(), mask.clone())
    });
}

#[test]
fn mse_masked_loss() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let x = params.add("pred", Matrix::uniform(3, 4, 1.0, &mut rng));
    let targets = Matrix::from_fn(3, 4, |r, c| (r as f32) * 0.3 - (c as f32) * 0.1);
    let mask = Matrix::from_fn(3, 4, |r, c| if (r + c) % 2 == 0 { 1.0 } else { 0.0 });
    gradcheck(&mut params, move |g| {
        let xv = g.param(x);
        g.mse_masked(xv, targets.clone(), mask.clone())
    });
}

#[test]
fn mlp_end_to_end() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let mlp = Mlp::new(
        &mut params,
        "mlp",
        &[3, 5, 2],
        Activation::Tanh,
        Activation::Identity,
        &mut rng,
    );
    let x_in = Matrix::uniform(2, 3, 0.8, &mut rng);
    gradcheck(&mut params, move |g| {
        let x = g.input(x_in.clone());
        let y = mlp.forward(g, x);
        g.sq_sum(y)
    });
}

#[test]
fn lstm_two_steps() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let cell = LstmCell::new(&mut params, "lstm", 3, 4, &mut rng);
    let x1 = Matrix::uniform(2, 3, 0.8, &mut rng);
    let x2 = Matrix::uniform(2, 3, 0.8, &mut rng);
    gradcheck(&mut params, move |g| {
        let state = cell.zero_state(g, 2);
        let x1v = g.input(x1.clone());
        let s1 = cell.step(g, x1v, state);
        let x2v = g.input(x2.clone());
        let s2 = cell.step(g, x2v, s1);
        g.sq_sum(s2.h)
    });
}

#[test]
fn gru_two_steps() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let cell = GruCell::new(&mut params, "gru", 3, 4, &mut rng);
    let x1 = Matrix::uniform(2, 3, 0.8, &mut rng);
    let x2 = Matrix::uniform(2, 3, 0.8, &mut rng);
    gradcheck(&mut params, move |g| {
        let h0 = cell.zero_state(g, 2);
        let x1v = g.input(x1.clone());
        let h1 = cell.step(g, x1v, h0);
        let x2v = g.input(x2.clone());
        let h2 = cell.step(g, x2v, h1);
        g.sq_sum(h2)
    });
}

#[test]
fn backward_accumulates_across_calls() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let w = params.add("w", Matrix::uniform(2, 2, 0.8, &mut rng));
    let mut grads = GradStore::zeros_like(&params);
    let mut g = Graph::new(&params);
    let wv = g.param(w);
    let loss = g.sq_sum(wv);
    g.backward(loss, &mut grads);
    let first = grads.get(w).clone();
    g.backward(loss, &mut grads);
    // Second sweep doubles the gradient.
    for (a, b) in grads.get(w).data().iter().zip(first.data()) {
        assert!((a - 2.0 * b).abs() < 1e-5);
    }
}

#[test]
fn backward_weighted_scales_gradient() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let w = params.add("w", Matrix::uniform(2, 2, 0.8, &mut rng));
    let mut g1 = GradStore::zeros_like(&params);
    let mut g2 = GradStore::zeros_like(&params);
    let mut g = Graph::new(&params);
    let wv = g.param(w);
    let loss = g.sq_sum(wv);
    g.backward(loss, &mut g1);
    g.backward_weighted(loss, -2.5, &mut g2);
    for (a, b) in g1.get(w).data().iter().zip(g2.get(w).data()) {
        assert!((b + 2.5 * a).abs() < 1e-5);
    }
}

#[test]
fn gather_var_rows() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let table = params.add("emb", Matrix::uniform(6, 4, 0.8, &mut rng));
    gradcheck(&mut params, |g| {
        let e = g.param(table);
        let t = g.tanh(e);
        // Repeated index exercises scatter-add.
        let picked = g.gather_var(t, &[1, 4, 1]);
        g.sq_sum(picked)
    });
}

#[test]
fn fused_param_matmuls() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let x = params.add("x", Matrix::uniform(3, 4, 0.8, &mut rng));
    let w = params.add("w", Matrix::uniform(4, 5, 0.8, &mut rng));
    let b = params.add("b", Matrix::uniform(1, 5, 0.8, &mut rng));
    let table = params.add("table", Matrix::uniform(6, 5, 0.8, &mut rng));
    gradcheck(&mut params, |g| {
        let xv = g.param(x);
        let xw = g.matmul_param(xv, w);
        let pre = g.add_row_param(xw, b);
        let h = g.tanh(pre);
        let logits = g.matmul_t_param(h, table); // 3 x 6
        g.sq_sum(logits)
    });
}

/// The fused param ops must be *bit-identical* to the
/// `param` + `matmul`/`add` compositions they replace — the fusion is
/// a pure tape/copy elimination, not a numeric change.
#[test]
fn fused_param_matmuls_are_bit_identical_to_unfused() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let x = params.add("x", Matrix::uniform(7, 4, 0.8, &mut rng));
    let w = params.add("w", Matrix::uniform(4, 5, 0.8, &mut rng));
    let b = params.add("b", Matrix::uniform(1, 5, 0.8, &mut rng));
    let table = params.add("table", Matrix::uniform(6, 5, 0.8, &mut rng));

    let run = |fused: bool| {
        let mut grads = GradStore::zeros_like(&params);
        let mut g = Graph::new(&params);
        let xv = g.param(x);
        let logits = if fused {
            let xw = g.matmul_param(xv, w);
            let pre = g.add_row_param(xw, b);
            let h = g.tanh(pre);
            g.matmul_t_param(h, table)
        } else {
            let wv = g.param(w);
            let bv = g.param(b);
            let tv = g.param(table);
            let xw = g.matmul(xv, wv);
            let pre = g.add(xw, bv);
            let h = g.tanh(pre);
            g.matmul_t(h, tv)
        };
        let loss = g.sq_sum(logits);
        g.backward(loss, &mut grads);
        let value: Vec<u32> = g.value(logits).data().iter().map(|v| v.to_bits()).collect();
        let gbits: Vec<Vec<u32>> = [x, w, b, table]
            .iter()
            .map(|&p| grads.get(p).data().iter().map(|v| v.to_bits()).collect())
            .collect();
        (value, gbits)
    };

    assert_eq!(run(true), run(false));
}

#[test]
fn log_softmax_pick_fused() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let x = params.add("x", Matrix::uniform(4, 6, 0.8, &mut rng));
    gradcheck(&mut params, |g| {
        let xv = g.param(x);
        let picked = g.log_softmax_pick(xv, &[2, 0, 5, 2]);
        let s = g.sum_all(picked);
        g.scale(s, -1.0)
    });
}

/// The fused pick must match `pick_per_row(log_softmax_rows(x))`
/// bit-for-bit in both the picked values and the input gradient.
#[test]
fn log_softmax_pick_is_bit_identical_to_composition() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let x = params.add("x", Matrix::uniform(5, 7, 3.0, &mut rng));
    let idx = [6u32, 0, 3, 3, 1];

    let run = |fused: bool| {
        let mut grads = GradStore::zeros_like(&params);
        let mut g = Graph::new(&params);
        let xv = g.param(x);
        let picked = if fused {
            g.log_softmax_pick(xv, &idx)
        } else {
            let lp = g.log_softmax_rows(xv);
            g.pick_per_row(lp, &idx)
        };
        let s = g.sum_all(picked);
        let loss = g.scale(s, -0.75);
        g.backward(loss, &mut grads);
        let value: Vec<u32> = g.value(picked).data().iter().map(|v| v.to_bits()).collect();
        let gx: Vec<u32> = grads.get(x).data().iter().map(|v| v.to_bits()).collect();
        (value, gx)
    };

    assert_eq!(run(true), run(false));
}
