//! Property tests for the blocked/parallel kernel layer: every product
//! must match the naive reference loops at every thread count
//! (the determinism contract in `kernel.rs`), including degenerate
//! 0/1-sized dims, tile-boundary shapes, and non-finite inputs
//! (`0.0 * NaN = NaN` must propagate, not be skipped).
//!
//! Two strengths of equality are asserted, per the contract:
//!
//! * **Across thread counts** the kernel output is *fully*
//!   bit-identical, NaN payloads included — the same machine code runs
//!   over a shape-determined row partition, so nothing can differ.
//! * **Against the naive reference** every numeric value and every
//!   `±0.0`/`±inf` is bit-identical, and NaN-ness agrees elementwise;
//!   NaN *sign/payload* is compared canonicalized, because IEEE 754
//!   leaves NaN propagation (which operand's payload survives) to the
//!   implementation and instruction selection differs between the
//!   register micro-kernel and the reference loop.

use proptest::prelude::*;
use tensor::Matrix;

const THREADS: [usize; 3] = [1, 4, 8];

/// Candidate dims: degenerate sizes plus the 4/16 micro-tile and
/// 32/64 boundaries of the blocked kernels (and one size past them).
const DIMS: [usize; 12] = [0, 1, 2, 3, 5, 31, 32, 33, 63, 64, 65, 127];

/// Deterministic fill with occasional exact zeros, NaNs and
/// infinities, so the IEEE-propagation paths get exercised alongside
/// ordinary values (an LCG keeps failures reproducible by seed).
fn fill(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let data = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match (state >> 33) % 41 {
                0 => 0.0,
                1 => f32::NAN,
                2 => f32::INFINITY,
                3 => f32::NEG_INFINITY,
                _ => ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5,
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data().iter().map(|x| x.to_bits()).collect()
}

/// Exact bits for every non-NaN value; all NaNs collapse to the one
/// canonical quiet NaN (see the module docs for why).
fn canon_bits(m: &Matrix) -> Vec<u32> {
    m.data()
        .iter()
        .map(|x| {
            if x.is_nan() {
                f32::NAN.to_bits()
            } else {
                x.to_bits()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_reference_at_any_thread_count(
        mi in 0usize..12, ki in 0usize..12, ni in 0usize..12, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = fill(m, k, seed);
        let b = fill(k, n, seed.wrapping_add(1));
        let got = a.matmul_threaded(&b, 1);
        prop_assert!(
            canon_bits(&got) == canon_bits(&a.matmul_ref(&b)),
            "matmul {m}x{k} * {k}x{n} diverged from the reference"
        );
        let want = bits(&got);
        for threads in THREADS {
            prop_assert!(
                bits(&a.matmul_threaded(&b, threads)) == want,
                "matmul {m}x{k} * {k}x{n} diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn t_matmul_matches_reference_at_any_thread_count(
        ki in 0usize..12, mi in 0usize..12, ni in 0usize..12, seed in 0u64..1_000_000
    ) {
        let (k, m, n) = (DIMS[ki], DIMS[mi], DIMS[ni]);
        let a = fill(k, m, seed);
        let b = fill(k, n, seed.wrapping_add(2));
        let got = a.t_matmul_threaded(&b, 1);
        prop_assert!(
            canon_bits(&got) == canon_bits(&a.t_matmul_ref(&b)),
            "t_matmul ({k}x{m})^T * {k}x{n} diverged from the reference"
        );
        let want = bits(&got);
        for threads in THREADS {
            prop_assert!(
                bits(&a.t_matmul_threaded(&b, threads)) == want,
                "t_matmul ({k}x{m})^T * {k}x{n} diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn matmul_t_matches_reference_at_any_thread_count(
        mi in 0usize..12, ki in 0usize..12, ni in 0usize..12, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = fill(m, k, seed);
        let b = fill(n, k, seed.wrapping_add(3));
        let got = a.matmul_t_threaded(&b, 1);
        prop_assert!(
            canon_bits(&got) == canon_bits(&a.matmul_t_ref(&b)),
            "matmul_t {m}x{k} * ({n}x{k})^T diverged from the reference"
        );
        let want = bits(&got);
        for threads in THREADS {
            prop_assert!(
                bits(&a.matmul_t_threaded(&b, threads)) == want,
                "matmul_t {m}x{k} * ({n}x{k})^T diverged at threads={threads}"
            );
        }
    }
}

/// Shapes big enough to cross `PAR_MIN_FLOPS` and split into several
/// row chunks, with a NaN and an infinity planted in the right operand
/// against a zero row on the left: the parallel blocked path must
/// produce the exact bits of its own serial run (NaNs included), and
/// canonically-equal bits vs the naive reference.
#[test]
fn parallel_dispatch_is_bit_identical_on_large_shapes() {
    let mut a = fill(192, 128, 7);
    for x in a.row_slice_mut(5) {
        *x = 0.0;
    }
    let mut b = fill(128, 160, 11);
    b.set(0, 3, f32::NAN);
    b.set(64, 40, f32::INFINITY);

    let serial = a.matmul_threaded(&b, 1);
    assert_eq!(canon_bits(&serial), canon_bits(&a.matmul_ref(&b)));
    let want = bits(&serial);
    for threads in THREADS {
        assert_eq!(
            bits(&a.matmul_threaded(&b, threads)),
            want,
            "threads={threads}"
        );
    }
    // The zero row times a NaN column is NaN, not zero.
    let mm = a.matmul_threaded(&b, 8);
    assert!(mm.at(5, 3).is_nan());

    let b2 = fill(192, 96, 13);
    let serial_t = a.t_matmul_threaded(&b2, 1);
    assert_eq!(canon_bits(&serial_t), canon_bits(&a.t_matmul_ref(&b2)));
    let want_t = bits(&serial_t);
    for threads in THREADS {
        assert_eq!(
            bits(&a.t_matmul_threaded(&b2, threads)),
            want_t,
            "threads={threads}"
        );
    }

    let b3 = fill(144, 128, 17);
    let serial_mt = a.matmul_t_threaded(&b3, 1);
    assert_eq!(canon_bits(&serial_mt), canon_bits(&a.matmul_t_ref(&b3)));
    let want_mt = bits(&serial_mt);
    for threads in THREADS {
        assert_eq!(
            bits(&a.matmul_t_threaded(&b3, threads)),
            want_mt,
            "threads={threads}"
        );
    }
}
