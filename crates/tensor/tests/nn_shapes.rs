//! Shape and behavior contracts for the NN building blocks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::nn::{Activation, GruCell, Linear, LstmCell, Mlp};
use tensor::{Graph, Matrix, ParamSet};

fn rng() -> StdRng {
    StdRng::seed_from_u64(0xBEEF)
}

#[test]
fn linear_output_shape_and_bias() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let layer = Linear::new(&mut params, "l", 4, 3, &mut rng);
    assert_eq!(layer.in_dim(), 4);
    assert_eq!(layer.out_dim(), 3);
    let mut g = Graph::new(&params);
    let x = g.input(Matrix::zeros(5, 4));
    let y = layer.forward(&mut g, x);
    assert_eq!(g.value(y).shape(), (5, 3));
    // Zero input ⇒ output equals the (zero-initialized) bias row.
    assert!(g.value(y).data().iter().all(|&v| v == 0.0));
}

#[test]
fn mlp_chains_dimensions() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let mlp = Mlp::new(
        &mut params,
        "m",
        &[6, 8, 8, 2],
        Activation::Relu,
        Activation::Identity,
        &mut rng,
    );
    assert_eq!(mlp.out_dim(), 2);
    let mut g = Graph::new(&params);
    let x = g.input(Matrix::full(3, 6, 0.5));
    let y = mlp.forward(&mut g, x);
    assert_eq!(g.value(y).shape(), (3, 2));
}

#[test]
fn mlp_final_activation_applies() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let mlp = Mlp::new(
        &mut params,
        "m",
        &[4, 4],
        Activation::Relu,
        Activation::Sigmoid,
        &mut rng,
    );
    let mut g = Graph::new(&params);
    let x = g.input(Matrix::uniform(2, 4, 3.0, &mut rng));
    let y = mlp.forward(&mut g, x);
    assert!(g.value(y).data().iter().all(|&v| (0.0..=1.0).contains(&v)));
}

#[test]
fn lstm_state_shapes_and_evolution() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let cell = LstmCell::new(&mut params, "lstm", 3, 5, &mut rng);
    assert_eq!(cell.hidden_dim(), 5);
    let mut g = Graph::new(&params);
    let s0 = cell.zero_state(&mut g, 2);
    assert_eq!(g.value(s0.h).shape(), (2, 5));
    assert!(g.value(s0.h).data().iter().all(|&v| v == 0.0));
    let x = g.input(Matrix::full(2, 3, 1.0));
    let s1 = cell.step(&mut g, x, s0);
    assert_eq!(g.value(s1.h).shape(), (2, 5));
    // A nonzero input must move the state.
    assert!(g.value(s1.h).max_abs() > 0.0);
    // Hidden state is o ⊙ tanh(c): bounded by 1.
    assert!(g.value(s1.h).max_abs() <= 1.0);
}

#[test]
fn gru_state_shapes_and_bounds() {
    let mut rng = rng();
    let mut params = ParamSet::new();
    let cell = GruCell::new(&mut params, "gru", 3, 4, &mut rng);
    assert_eq!(cell.hidden_dim(), 4);
    let mut g = Graph::new(&params);
    let h0 = cell.zero_state(&mut g, 3);
    let x = g.input(Matrix::full(3, 3, 2.0));
    let mut h = h0;
    for _ in 0..10 {
        h = cell.step(&mut g, x, h);
    }
    // h is a convex combination of tanh outputs: bounded by 1.
    assert!(g.value(h).max_abs() <= 1.0);
    assert!(g.value(h).max_abs() > 0.0);
}

#[test]
fn identical_seeds_build_identical_networks() {
    let build = || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = ParamSet::new();
        let _ = Mlp::new(
            &mut params,
            "m",
            &[4, 4, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        params
    };
    let a = build();
    let b = build();
    assert_eq!(a.num_scalars(), b.num_scalars());
    for (ida, ma) in a.iter() {
        assert_eq!(ma.data(), b.get(ida).data());
    }
}

#[test]
fn sequence_order_matters_to_lstm() {
    // The LSTM must distinguish [a, b] from [b, a] — the property
    // PoisonRec relies on to learn click *order* (e.g. for GRU4Rec /
    // CoVisitation attacks).
    let mut rng = rng();
    let mut params = ParamSet::new();
    let cell = LstmCell::new(&mut params, "lstm", 2, 4, &mut rng);
    let xa = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
    let xb = Matrix::from_vec(1, 2, vec![0.0, 1.0]);

    let run = |first: &Matrix, second: &Matrix, params: &ParamSet| -> Vec<f32> {
        let mut g = Graph::new(params);
        let s0 = cell.zero_state(&mut g, 1);
        let x1 = g.input(first.clone());
        let s1 = cell.step(&mut g, x1, s0);
        let x2 = g.input(second.clone());
        let s2 = cell.step(&mut g, x2, s1);
        g.value(s2.h).data().to_vec()
    };
    let ab = run(&xa, &xb, &params);
    let ba = run(&xb, &xa, &params);
    let diff: f32 = ab.iter().zip(&ba).map(|(x, y)| (x - y).abs()).sum();
    assert!(diff > 1e-4, "LSTM is order-blind: {ab:?} vs {ba:?}");
}
