//! Length-prefixed little-endian binary (de)serialization for the
//! tensor types that live inside training checkpoints.
//!
//! The build environment has no serde, so this module hand-rolls the
//! minimum a durable checkpoint needs: a [`Writer`] that appends
//! fixed-width little-endian scalars and length-prefixed buffers to a
//! byte vector, a bounds-checked [`Reader`] that never panics on
//! malformed input (every decode path returns a descriptive
//! [`WireError`] instead), and the [`Codec`] trait implemented by
//! [`Matrix`], [`ParamSet`], and [`crate::optim::Adam`].
//!
//! Floats are stored as their IEEE-754 bit patterns (`to_le_bytes` /
//! `from_le_bytes`), so round-trips are bit-exact — including NaN
//! payloads and signed zeros. That is what lets the trainer's
//! checkpoint/resume tests demand *bit-identical* continuation rather
//! than approximate equality.

use crate::matrix::Matrix;
use crate::params::ParamSet;

/// A decode failure: byte offset reached plus what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    pub offset: usize,
    pub message: String,
}

impl WireError {
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// UTF-8 string as `u64` byte length + bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// `f32` slice as `u64` element count + packed bit patterns.
    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Bounds-checked little-endian byte reader over a borrowed buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(
                self.pos,
                format!(
                    "truncated input: need {n} byte(s) for {what}, {} left",
                    self.remaining()
                ),
            ));
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    pub fn get_u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn get_u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn get_f32(&mut self, what: &str) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A `u64` length that must be coverable by the remaining bytes at
    /// `elem_size` bytes per element — the guard that keeps a corrupted
    /// length prefix from turning into a giant allocation.
    pub fn get_len(&mut self, elem_size: usize, what: &str) -> Result<usize, WireError> {
        let offset = self.pos;
        let n = self.get_u64(what)?;
        let need = (n as u128) * (elem_size as u128);
        if need > self.remaining() as u128 {
            return Err(WireError::new(
                offset,
                format!(
                    "implausible length {n} for {what}: needs {need} byte(s), {} left",
                    self.remaining()
                ),
            ));
        }
        Ok(n as usize)
    }

    pub fn get_str(&mut self, what: &str) -> Result<String, WireError> {
        let n = self.get_len(1, what)?;
        let offset = self.pos;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::new(offset, format!("{what} is not valid UTF-8")))
    }

    pub fn get_f32s(&mut self, what: &str) -> Result<Vec<f32>, WireError> {
        let n = self.get_len(4, what)?;
        let bytes = self.take(n * 4, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Fails unless every byte has been consumed.
    pub fn expect_eof(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::new(
                self.pos,
                format!("{} trailing byte(s) after document", self.remaining()),
            ));
        }
        Ok(())
    }
}

/// Symmetric binary encode/decode. Decoding must reject any malformed
/// input with a [`WireError`] — never panic, never allocate
/// proportionally to an unvalidated length.
pub trait Codec: Sized {
    fn encode(&self, w: &mut Writer);
    fn decode(r: &mut Reader) -> Result<Self, WireError>;

    /// [`Codec::encode`] into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// [`Codec::decode`] of a complete buffer (trailing bytes rejected).
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.expect_eof()?;
        Ok(value)
    }
}

impl Codec for Matrix {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.rows() as u64);
        w.put_u64(self.cols() as u64);
        w.put_f32s(self.data());
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let offset_rows = r.remaining();
        let rows = r.get_u64("matrix rows")? as usize;
        let cols = r.get_u64("matrix cols")? as usize;
        let data = r.get_f32s("matrix data")?;
        if rows.checked_mul(cols) != Some(data.len()) {
            return Err(WireError::new(
                offset_rows,
                format!(
                    "matrix shape {rows}x{cols} does not match {} stored value(s)",
                    data.len()
                ),
            ));
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

impl Codec for ParamSet {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for (id, matrix) in self.iter() {
            w.put_str(self.name(id));
            matrix.encode(w);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        // Each entry is at least a name length (8) + matrix header (16)
        // + empty data length (8).
        let n = r.get_len(32, "parameter count")?;
        let mut params = ParamSet::new();
        for _ in 0..n {
            let name = r.get_str("parameter name")?;
            let matrix = Matrix::decode(r)?;
            params.add(name, matrix);
        }
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f32(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX);
        assert_eq!(r.get_f32("d").unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_f64("e").unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.get_str("f").unwrap(), "héllo");
        r.expect_eof().unwrap();
    }

    #[test]
    fn matrix_round_trips_bit_exactly() {
        let m = Matrix::from_vec(2, 3, vec![1.5, -0.0, f32::NAN, f32::MIN, f32::MAX, 1e-40]);
        let back = Matrix::from_bytes(&m.to_bytes()).expect("decodes");
        assert_eq!(back.shape(), (2, 3));
        for (a, b) in m.data().iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_errors_instead_of_panicking() {
        let bytes = Matrix::from_vec(4, 4, vec![1.0; 16]).to_bytes();
        for cut in 0..bytes.len() {
            let err = Matrix::from_bytes(&bytes[..cut]).expect_err("truncated");
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn implausible_length_prefix_is_rejected_cheaply() {
        let mut w = Writer::new();
        w.put_u64(3); // rows
        w.put_u64(4); // cols
        w.put_u64(u64::MAX); // claimed data length
        let err = Matrix::from_bytes(&w.into_bytes()).expect_err("absurd length");
        assert!(err.message.contains("implausible length"), "{err}");
    }

    #[test]
    fn param_set_round_trips_names_and_values() {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        ps.add("b", Matrix::from_vec(1, 2, vec![-1.0, 0.25]));
        let back = ParamSet::from_bytes(&ps.to_bytes()).expect("decodes");
        assert_eq!(back.len(), 2);
        for (id, matrix) in ps.iter() {
            assert_eq!(back.name(id), ps.name(id));
            assert_eq!(back.get(id).data(), matrix.data());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Matrix::zeros(1, 1).to_bytes();
        bytes.push(0);
        let err = Matrix::from_bytes(&bytes).expect_err("trailing byte");
        assert!(err.message.contains("trailing"), "{err}");
    }
}
