//! # tensor
//!
//! Minimal dense-matrix machine-learning substrate for the PoisonRec
//! reproduction: a row-major [`Matrix`], a define-by-run reverse-mode
//! autodiff [`Graph`] over a shared [`ParamSet`], recurrent/feed-forward
//! cells ([`nn`]), and first-order optimizers ([`optim`]).
//!
//! The design goal is *verifiability* over raw speed: every operation's
//! vector-Jacobian product is unit-tested against central finite
//! differences (see `tests/gradcheck.rs`), and the dimensionalities used
//! by the paper (embedding width 64, batches of tens of rows) keep naive
//! kernels fast enough.
//!
//! ```
//! use tensor::{Graph, GradStore, Matrix, ParamSet};
//!
//! let mut rng = rand::thread_rng();
//! let mut params = ParamSet::new();
//! let w = params.add("w", Matrix::xavier(3, 2, &mut rng));
//!
//! let mut grads = GradStore::zeros_like(&params);
//! let mut g = Graph::new(&params);
//! let x = g.input(Matrix::full(1, 3, 1.0));
//! let wv = g.param(w);
//! let y = g.matmul(x, wv);
//! let loss = g.sq_sum(y);
//! g.backward(loss, &mut grads);
//! assert_eq!(grads.get(w).shape(), (3, 2));
//! ```

mod graph;
pub mod kernel;
mod matrix;
pub mod nn;
pub mod optim;
mod params;
pub mod profile;
pub mod sparse;
pub mod util;
pub mod wire;

pub use graph::{stable_sigmoid, stable_softplus, Graph, GraphArena, Var};
pub use matrix::Matrix;
pub use params::{GradStore, ParamId, ParamSet};
pub use profile::{OpKind, OpProfile, OpProfileRow};
pub use sparse::Csr;
