//! Compressed-sparse-row matrix used for graph propagation (NGCF's
//! normalized bipartite adjacency). The sparse operand is always a
//! constant of the computation, so gradients only flow to the dense
//! side of `spmm`.

use crate::matrix::Matrix;

/// A CSR sparse matrix of `f32`.
#[derive(Clone, Debug)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// `indptr[r]..indptr[r+1]` indexes the entries of row `r`.
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from (row, col, value) triples. Triples may be
    /// unsorted; duplicates are summed.
    pub fn from_triples(rows: usize, cols: usize, triples: &[(usize, usize, f32)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triples {
            assert!(
                r < rows && c < cols,
                "triple ({r},{c}) out of bounds {rows}x{cols}"
            );
            counts[r + 1] += 1;
        }
        for r in 0..rows {
            counts[r + 1] += counts[r];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; triples.len()];
        let mut values = vec![0f32; triples.len()];
        let mut cursor = indptr.clone();
        for &(r, c, v) in triples {
            let pos = cursor[r];
            indices[pos] = c as u32;
            values[pos] = v;
            cursor[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_indices = Vec::with_capacity(indices.len());
        let mut out_values = Vec::with_capacity(values.len());
        let mut out_indptr = Vec::with_capacity(rows + 1);
        out_indptr.push(0);
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..rows {
            scratch.clear();
            for i in indptr[r]..indptr[r + 1] {
                scratch.push((indices[i], values[i]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_indices.push(c);
                out_values.push(v);
                i = j;
            }
            out_indptr.push(out_indices.len());
        }
        Self {
            rows,
            cols,
            indptr: out_indptr,
            indices: out_indices,
            values: out_values,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates `(col, value)` of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Dense product `self * dense`.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm shape mismatch: {}x{} * {}x{}",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let mut out = Matrix::zeros(self.rows, dense.cols());
        for r in 0..self.rows {
            let out_row = out.row_slice_mut(r);
            // Borrow fields directly so the closure does not re-borrow `out`.
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            for i in lo..hi {
                let c = self.indices[i] as usize;
                let v = self.values[i];
                let d_row = dense.row_slice(c);
                for (o, &d) in out_row.iter_mut().zip(d_row) {
                    *o += v * d;
                }
            }
        }
        out
    }

    /// Dense product `self^T * dense` (used for the spmm gradient).
    pub fn t_spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            dense.rows(),
            "t_spmm shape mismatch: ({}x{})^T * {}x{}",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let mut out = Matrix::zeros(self.cols, dense.cols());
        for r in 0..self.rows {
            let d_row = dense.row_slice(r);
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            for i in lo..hi {
                let c = self.indices[i] as usize;
                let v = self.values[i];
                let out_row = out.row_slice_mut(c);
                for (o, &d) in out_row.iter_mut().zip(d_row) {
                    *o += v * d;
                }
            }
        }
        out
    }

    /// Materializes the dense equivalent (tests only; O(rows*cols)).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.set(r, c, out.at(r, c) + v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(rows: usize, cols: usize, nnz: usize, rng: &mut StdRng) -> Csr {
        let triples: Vec<_> = (0..nnz)
            .map(|_| {
                (
                    rng.gen_range(0..rows),
                    rng.gen_range(0..cols),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        Csr::from_triples(rows, cols, &triples)
    }

    #[test]
    fn spmm_matches_dense() {
        let mut rng = StdRng::seed_from_u64(11);
        let sp = random_csr(8, 6, 20, &mut rng);
        let d = Matrix::uniform(6, 4, 1.0, &mut rng);
        let fast = sp.spmm(&d);
        let slow = sp.to_dense().matmul(&d);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn t_spmm_matches_dense() {
        let mut rng = StdRng::seed_from_u64(13);
        let sp = random_csr(8, 6, 20, &mut rng);
        let d = Matrix::uniform(8, 3, 1.0, &mut rng);
        let fast = sp.t_spmm(&d);
        let slow = sp.to_dense().transpose().matmul(&d);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn duplicates_are_summed() {
        let sp = Csr::from_triples(2, 2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, -1.0)]);
        assert_eq!(sp.nnz(), 2);
        let d = sp.to_dense();
        assert_eq!(d.at(0, 1), 3.0);
        assert_eq!(d.at(1, 0), -1.0);
    }

    #[test]
    fn empty_rows_are_fine() {
        let sp = Csr::from_triples(3, 3, &[(2, 2, 5.0)]);
        assert_eq!(sp.row_iter(0).count(), 0);
        assert_eq!(sp.row_iter(2).count(), 1);
        let out = sp.spmm(&Matrix::full(3, 2, 1.0));
        assert_eq!(out.row_slice(0), &[0.0, 0.0]);
        assert_eq!(out.row_slice(2), &[5.0, 5.0]);
    }
}
