//! First-order optimizers over a [`ParamSet`] + [`GradStore`] pair.

use crate::matrix::Matrix;
use crate::params::{GradStore, ParamSet};

/// Common interface: consume the accumulated gradients and update the
/// parameters in place. Implementations do **not** zero the gradients;
/// call [`GradStore::zero`] afterwards.
pub trait Optimizer {
    fn step(&mut self, params: &mut ParamSet, grads: &GradStore);
    /// Current learning rate.
    fn learning_rate(&self) -> f32;
    /// Adjusts the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional L2 weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }

    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Self { lr, weight_decay }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, grads: &GradStore) {
        assert_eq!(params.len(), grads.len(), "param/grad arity mismatch");
        for i in 0..params.len() {
            let id = crate::ParamId(i);
            let g = grads.get(id).clone();
            let p = params.get_mut(id);
            if self.weight_decay > 0.0 {
                let wd = self.weight_decay;
                let lr = self.lr;
                for (pv, gv) in p.data_mut().iter_mut().zip(g.data()) {
                    *pv -= lr * (gv + wd * *pv);
                }
            } else {
                p.axpy(-self.lr, &g);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    pub fn new(params: &ParamSet, lr: f32) -> Self {
        let zeros: Vec<Matrix> = params
            .iter()
            .map(|(_, m)| Matrix::zeros(m.rows(), m.cols()))
            .collect();
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: zeros.clone(),
            v: zeros,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Whether the moment estimates line up with `params` slot-for-slot
    /// (same arity, same shapes) — the resume-time validity check that
    /// turns a would-be mid-training panic into a loud decode error.
    pub fn tracks(&self, params: &ParamSet) -> bool {
        self.m.len() == params.len()
            && params
                .iter()
                .all(|(id, p)| self.m[id.0].shape() == p.shape())
    }
}

/// Checkpoint codec: hyperparameters, step counter, and both moment
/// estimate sets, bit-exactly. Decoding validates that `m` and `v`
/// agree in arity and per-slot shape, so a resumed optimizer can never
/// silently pair mismatched moments.
impl crate::wire::Codec for Adam {
    fn encode(&self, w: &mut crate::wire::Writer) {
        w.put_f32(self.lr);
        w.put_f32(self.beta1);
        w.put_f32(self.beta2);
        w.put_f32(self.eps);
        w.put_u64(self.t);
        w.put_u64(self.m.len() as u64);
        for matrix in self.m.iter().chain(self.v.iter()) {
            matrix.encode(w);
        }
    }

    fn decode(r: &mut crate::wire::Reader) -> Result<Self, crate::wire::WireError> {
        let lr = r.get_f32("adam lr")?;
        let beta1 = r.get_f32("adam beta1")?;
        let beta2 = r.get_f32("adam beta2")?;
        let eps = r.get_f32("adam eps")?;
        let t = r.get_u64("adam step counter")?;
        // Each moment pair is at least two empty matrices (24 B each).
        let n = r.get_len(48, "adam moment count")?;
        let m: Vec<Matrix> = (0..n)
            .map(|_| Matrix::decode(r))
            .collect::<Result<_, _>>()?;
        let v: Vec<Matrix> = (0..n)
            .map(|_| Matrix::decode(r))
            .collect::<Result<_, _>>()?;
        for (i, (mm, vv)) in m.iter().zip(&v).enumerate() {
            if mm.shape() != vv.shape() {
                return Err(crate::wire::WireError::new(
                    0,
                    format!(
                        "adam moment {i}: first-moment shape {:?} != second-moment shape {:?}",
                        mm.shape(),
                        vv.shape()
                    ),
                ));
            }
        }
        Ok(Self {
            lr,
            beta1,
            beta2,
            eps,
            t,
            m,
            v,
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, grads: &GradStore) {
        assert_eq!(
            params.len(),
            self.m.len(),
            "Adam built for a different ParamSet"
        );
        assert_eq!(params.len(), grads.len(), "param/grad arity mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let id = crate::ParamId(i);
            let g = grads.get(id);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let p = params.get_mut(id);
            for ((pv, gv), (mv, vv)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let m_hat = *mv / b1t;
                let v_hat = *vv / b2t;
                *pv -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, ParamSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Minimizing (w - 3)^2 must converge to w = 3 for both optimizers.
    fn converges(opt: &mut dyn Optimizer, params: &mut ParamSet, w: crate::ParamId) -> f32 {
        for _ in 0..500 {
            let mut grads = GradStore::zeros_like(params);
            let mut g = Graph::new(params);
            let wv = g.param(w);
            let shifted = g.add_scalar(wv, -3.0);
            let loss = g.sq_sum(shifted);
            g.backward(loss, &mut grads);
            opt.step(params, &grads);
        }
        params.get(w).at(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = ParamSet::new();
        let w = params.add("w", crate::Matrix::uniform(1, 1, 1.0, &mut rng));
        let mut opt = Sgd::new(0.1);
        let final_w = converges(&mut opt, &mut params, w);
        assert!((final_w - 3.0).abs() < 1e-3, "got {final_w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut params = ParamSet::new();
        let w = params.add("w", crate::Matrix::uniform(1, 1, 1.0, &mut rng));
        let mut opt = Adam::new(&params, 0.05);
        let final_w = converges(&mut opt, &mut params, w);
        assert!((final_w - 3.0).abs() < 1e-2, "got {final_w}");
    }

    #[test]
    fn adam_checkpoint_round_trip_continues_identically() {
        use crate::wire::Codec;
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = ParamSet::new();
        let w = params.add("w", crate::Matrix::uniform(3, 2, 1.0, &mut rng));
        let mut opt = Adam::new(&params, 0.05);
        let grad_step = |opt: &mut Adam, params: &mut ParamSet, scale: f32| {
            let mut grads = GradStore::zeros_like(params);
            for (i, g) in grads.get_mut(w).data_mut().iter_mut().enumerate() {
                *g = scale * (i as f32 - 2.5);
            }
            opt.step(params, &grads);
        };
        for i in 0..5 {
            grad_step(&mut opt, &mut params, 0.1 * (i + 1) as f32);
        }

        let mut resumed_opt = Adam::from_bytes(&opt.to_bytes()).expect("decodes");
        let mut resumed_params = params.clone();
        assert_eq!(resumed_opt.steps(), 5);
        for i in 0..5 {
            let scale = -0.2 * (i + 1) as f32;
            grad_step(&mut opt, &mut params, scale);
            grad_step(&mut resumed_opt, &mut resumed_params, scale);
        }
        for (a, b) in params
            .get(w)
            .data()
            .iter()
            .zip(resumed_params.get(w).data())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "resumed Adam diverged");
        }
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let mut params = ParamSet::new();
        let w = params.add("w", crate::Matrix::full(1, 1, 1.0));
        let grads = GradStore::zeros_like(&params);
        let mut opt = Sgd::with_weight_decay(0.1, 0.5);
        opt.step(&mut params, &grads);
        // w -= lr * wd * w => 1 - 0.05
        assert!((params.get(w).at(0, 0) - 0.95).abs() < 1e-6);
    }
}
