//! First-order optimizers over a [`ParamSet`] + [`GradStore`] pair.

use crate::matrix::Matrix;
use crate::params::{GradStore, ParamSet};

/// Common interface: consume the accumulated gradients and update the
/// parameters in place. Implementations do **not** zero the gradients;
/// call [`GradStore::zero`] afterwards.
pub trait Optimizer {
    fn step(&mut self, params: &mut ParamSet, grads: &GradStore);
    /// Current learning rate.
    fn learning_rate(&self) -> f32;
    /// Adjusts the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional L2 weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }

    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Self { lr, weight_decay }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, grads: &GradStore) {
        assert_eq!(params.len(), grads.len(), "param/grad arity mismatch");
        for i in 0..params.len() {
            let id = crate::ParamId(i);
            let g = grads.get(id).clone();
            let p = params.get_mut(id);
            if self.weight_decay > 0.0 {
                let wd = self.weight_decay;
                let lr = self.lr;
                for (pv, gv) in p.data_mut().iter_mut().zip(g.data()) {
                    *pv -= lr * (gv + wd * *pv);
                }
            } else {
                p.axpy(-self.lr, &g);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    pub fn new(params: &ParamSet, lr: f32) -> Self {
        let zeros: Vec<Matrix> = params
            .iter()
            .map(|(_, m)| Matrix::zeros(m.rows(), m.cols()))
            .collect();
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: zeros.clone(),
            v: zeros,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, grads: &GradStore) {
        assert_eq!(
            params.len(),
            self.m.len(),
            "Adam built for a different ParamSet"
        );
        assert_eq!(params.len(), grads.len(), "param/grad arity mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let id = crate::ParamId(i);
            let g = grads.get(id);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let p = params.get_mut(id);
            for ((pv, gv), (mv, vv)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let m_hat = *mv / b1t;
                let v_hat = *vv / b2t;
                *pv -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, ParamSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Minimizing (w - 3)^2 must converge to w = 3 for both optimizers.
    fn converges(opt: &mut dyn Optimizer, params: &mut ParamSet, w: crate::ParamId) -> f32 {
        for _ in 0..500 {
            let mut grads = GradStore::zeros_like(params);
            let mut g = Graph::new(params);
            let wv = g.param(w);
            let shifted = g.add_scalar(wv, -3.0);
            let loss = g.sq_sum(shifted);
            g.backward(loss, &mut grads);
            opt.step(params, &grads);
        }
        params.get(w).at(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = ParamSet::new();
        let w = params.add("w", crate::Matrix::uniform(1, 1, 1.0, &mut rng));
        let mut opt = Sgd::new(0.1);
        let final_w = converges(&mut opt, &mut params, w);
        assert!((final_w - 3.0).abs() < 1e-3, "got {final_w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut params = ParamSet::new();
        let w = params.add("w", crate::Matrix::uniform(1, 1, 1.0, &mut rng));
        let mut opt = Adam::new(&params, 0.05);
        let final_w = converges(&mut opt, &mut params, w);
        assert!((final_w - 3.0).abs() < 1e-2, "got {final_w}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let mut params = ParamSet::new();
        let w = params.add("w", crate::Matrix::full(1, 1, 1.0));
        let grads = GradStore::zeros_like(&params);
        let mut opt = Sgd::with_weight_decay(0.1, 0.5);
        opt.step(&mut params, &grads);
        // w -= lr * wd * w => 1 - 0.05
        assert!((params.get(w).at(0, 0) - 0.95).abs() < 1e-6);
    }
}
