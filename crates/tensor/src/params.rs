//! Trainable parameter storage shared by the autodiff graph and the
//! optimizers. Parameters live outside the per-step [`crate::Graph`] so a
//! fresh graph can be built for every forward pass without copying
//! weights.

use rand::Rng;

use crate::matrix::Matrix;

/// Handle to one parameter matrix inside a [`ParamSet`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index of the parameter within its [`ParamSet`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named collection of trainable matrices.
#[derive(Clone, Debug, Default)]
pub struct ParamSet {
    entries: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an explicit initial value.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.entries.push(value);
        self.names.push(name.into());
        ParamId(self.entries.len() - 1)
    }

    /// Registers a Xavier-initialized `fan_in x fan_out` weight.
    pub fn add_xavier(
        &mut self,
        name: impl Into<String>,
        fan_in: usize,
        fan_out: usize,
        rng: &mut impl Rng,
    ) -> ParamId {
        self.add(name, Matrix::xavier(fan_in, fan_out, rng))
    }

    /// Registers a zero-initialized `1 x n` bias row.
    pub fn add_bias(&mut self, name: impl Into<String>, n: usize) -> ParamId {
        self.add(name, Matrix::zeros(1, n))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0]
    }

    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0]
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates `(id, matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, m)| (ParamId(i), m))
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(Matrix::len).sum()
    }

    /// True if any parameter contains NaN/inf (training-loop guard).
    pub fn has_non_finite(&self) -> bool {
        self.entries.iter().any(Matrix::has_non_finite)
    }
}

/// Gradient accumulator aligned with a [`ParamSet`].
#[derive(Clone, Debug)]
pub struct GradStore {
    grads: Vec<Matrix>,
}

impl GradStore {
    /// Zero gradients with the same shapes as `params`.
    pub fn zeros_like(params: &ParamSet) -> Self {
        Self {
            grads: params
                .entries
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect(),
        }
    }

    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.grads[id.0]
    }

    /// Resets every gradient to zero, keeping allocations.
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm across all gradients.
    pub fn l2_norm(&self) -> f32 {
        self.grads.iter().map(Matrix::sq_norm).sum::<f32>().sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.l2_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.scale_inplace(s);
            }
        }
        norm
    }

    pub fn len(&self) -> usize {
        self.grads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_lookup() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let w = ps.add_xavier("w", 4, 3, &mut rng);
        let b = ps.add_bias("b", 3);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.get(w).shape(), (4, 3));
        assert_eq!(ps.get(b).shape(), (1, 3));
        assert_eq!(ps.name(w), "w");
        assert_eq!(ps.num_scalars(), 15);
    }

    #[test]
    fn grad_clip() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Matrix::zeros(1, 2));
        let mut gs = GradStore::zeros_like(&ps);
        gs.get_mut(w).data_mut().copy_from_slice(&[3.0, 4.0]);
        let pre = gs.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((gs.l2_norm() - 1.0).abs() < 1e-5);
        // Below the threshold nothing changes.
        let pre2 = gs.clip_global_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
    }
}
