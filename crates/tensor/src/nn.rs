//! Neural-network building blocks composed from tape operations:
//! linear layers, multi-layer perceptrons, and LSTM / GRU recurrent
//! cells. Each block registers its parameters in a [`ParamSet`] at
//! construction time and builds graph nodes when applied.
//!
//! The matmuls these blocks emit run on the blocked, pool-parallel
//! [`crate::kernel`] layer; results are bit-identical at any kernel
//! thread count, so blocks never need to care about threading.

use rand::Rng;

use crate::graph::{Graph, Var};
use crate::params::{ParamId, ParamSet};

/// Fully-connected layer `y = x W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = params.add_xavier(format!("{name}.w"), in_dim, out_dim, rng);
        let b = params.add_bias(format!("{name}.b"), out_dim);
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let xw = g.matmul_param(x, self.w);
        g.add_row_param(xw, self.b)
    }
}

/// Activation selector for [`Mlp`] hidden layers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Tanh,
    Sigmoid,
    /// Leaky ReLU with slope 0.2 (NGCF's choice).
    LeakyRelu,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    pub fn apply(self, g: &mut Graph<'_>, x: Var) -> Var {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::LeakyRelu => g.leaky_relu(x, 0.2),
            Activation::Identity => x,
        }
    }
}

/// Multi-layer perceptron. The activation is applied after every layer
/// except the last (`final_activation` controls the output).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_activation: Activation,
    final_activation: Activation,
}

impl Mlp {
    /// `dims` is the full chain, e.g. `[64, 64, 64]` builds two layers.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        dims: &[usize],
        hidden_activation: Activation,
        final_activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(params, &format!("{name}.l{i}"), w[0], w[1], rng))
            .collect();
        Self {
            layers,
            hidden_activation,
            final_activation,
        }
    }

    pub fn forward(&self, g: &mut Graph<'_>, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(g, x);
            x = if i == last {
                self.final_activation.apply(g, x)
            } else {
                self.hidden_activation.apply(g, x)
            };
        }
        x
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }
}

/// Hidden state of a recurrent cell: one row per sequence in the batch.
#[derive(Copy, Clone, Debug)]
pub struct LstmState {
    pub h: Var,
    pub c: Var,
}

/// Standard LSTM cell.
///
/// Gates: `i, f, o = σ(x W• + h U• + b•)`, `g = tanh(x Wg + h Ug + bg)`,
/// `c' = f ⊙ c + i ⊙ g`, `h' = o ⊙ tanh(c')`.
#[derive(Clone, Debug)]
pub struct LstmCell {
    wi: Linear,
    ui: ParamId,
    wf: Linear,
    uf: ParamId,
    wo: Linear,
    uo: ParamId,
    wg: Linear,
    ug: ParamId,
    hidden: usize,
}

impl LstmCell {
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            wi: Linear::new(params, &format!("{name}.wi"), input, hidden, rng),
            ui: params.add_xavier(format!("{name}.ui"), hidden, hidden, rng),
            wf: Linear::new(params, &format!("{name}.wf"), input, hidden, rng),
            uf: params.add_xavier(format!("{name}.uf"), hidden, hidden, rng),
            wo: Linear::new(params, &format!("{name}.wo"), input, hidden, rng),
            uo: params.add_xavier(format!("{name}.uo"), hidden, hidden, rng),
            wg: Linear::new(params, &format!("{name}.wg"), input, hidden, rng),
            ug: params.add_xavier(format!("{name}.ug"), hidden, hidden, rng),
            hidden,
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Zero initial state for a batch of `batch` sequences.
    pub fn zero_state(&self, g: &mut Graph<'_>, batch: usize) -> LstmState {
        let h = g.input(crate::Matrix::zeros(batch, self.hidden));
        let c = g.input(crate::Matrix::zeros(batch, self.hidden));
        LstmState { h, c }
    }

    fn gate(&self, g: &mut Graph<'_>, w: &Linear, u: ParamId, x: Var, h: Var) -> Var {
        let xw = w.forward(g, x);
        let hu = g.matmul_param(h, u);
        g.add(xw, hu)
    }

    pub fn step(&self, g: &mut Graph<'_>, x: Var, state: LstmState) -> LstmState {
        let i_pre = self.gate(g, &self.wi, self.ui, x, state.h);
        let i = g.sigmoid(i_pre);
        let f_pre = self.gate(g, &self.wf, self.uf, x, state.h);
        let f = g.sigmoid(f_pre);
        let o_pre = self.gate(g, &self.wo, self.uo, x, state.h);
        let o = g.sigmoid(o_pre);
        let g_pre = self.gate(g, &self.wg, self.ug, x, state.h);
        let gg = g.tanh(g_pre);
        let fc = g.mul(f, state.c);
        let ig = g.mul(i, gg);
        let c = g.add(fc, ig);
        let tc = g.tanh(c);
        let h = g.mul(o, tc);
        LstmState { h, c }
    }
}

/// Standard GRU cell.
///
/// `z = σ(x Wz + h Uz + bz)`, `r = σ(x Wr + h Ur + br)`,
/// `n = tanh(x Wn + (r ⊙ h) Un + bn)`, `h' = (1 - z) ⊙ h + z ⊙ n`.
#[derive(Clone, Debug)]
pub struct GruCell {
    wz: Linear,
    uz: ParamId,
    wr: Linear,
    ur: ParamId,
    wn: Linear,
    un: ParamId,
    hidden: usize,
}

impl GruCell {
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            wz: Linear::new(params, &format!("{name}.wz"), input, hidden, rng),
            uz: params.add_xavier(format!("{name}.uz"), hidden, hidden, rng),
            wr: Linear::new(params, &format!("{name}.wr"), input, hidden, rng),
            ur: params.add_xavier(format!("{name}.ur"), hidden, hidden, rng),
            wn: Linear::new(params, &format!("{name}.wn"), input, hidden, rng),
            un: params.add_xavier(format!("{name}.un"), hidden, hidden, rng),
            hidden,
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    pub fn zero_state(&self, g: &mut Graph<'_>, batch: usize) -> Var {
        g.input(crate::Matrix::zeros(batch, self.hidden))
    }

    pub fn step(&self, g: &mut Graph<'_>, x: Var, h: Var) -> Var {
        let z_x = self.wz.forward(g, x);
        let z_h = g.matmul_param(h, self.uz);
        let z_pre = g.add(z_x, z_h);
        let z = g.sigmoid(z_pre);

        let r_x = self.wr.forward(g, x);
        let r_h = g.matmul_param(h, self.ur);
        let r_pre = g.add(r_x, r_h);
        let r = g.sigmoid(r_pre);

        let n_x = self.wn.forward(g, x);
        let rh = g.mul(r, h);
        let n_h = g.matmul_param(rh, self.un);
        let n_pre = g.add(n_x, n_h);
        let n = g.tanh(n_pre);

        // h' = (1 - z) ⊙ h + z ⊙ n
        let neg_z = g.scale(z, -1.0);
        let one_minus_z = g.add_scalar(neg_z, 1.0);
        let keep = g.mul(one_minus_z, h);
        let update = g.mul(z, n);
        g.add(keep, update)
    }
}
