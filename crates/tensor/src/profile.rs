//! Per-`Op`-kind autodiff profiling.
//!
//! Every [`crate::Graph`] constructor and every node visited by the
//! backward sweep reports into one process-wide table of atomic
//! aggregates, keyed by [`OpKind`]: forward/backward wall time,
//! invocation counts, output element counts, and a FLOP estimate from
//! the operand shapes. [`snapshot`] turns the table into an
//! [`OpProfile`] whose JSON lands next to the Chrome trace (the
//! `"opProfile"` top-level field) and feeds `trace_report`'s top-N
//! self-time table and the `BENCH_*.json` per-op medians.
//!
//! Profiling shares the tracer's process-wide enable flag
//! ([`telemetry::trace::is_enabled`]): one relaxed load and a branch
//! per op when disabled, so the tape loses nothing measurable with
//! observability off. Timing never touches any RNG — enabling the
//! profiler cannot change a single sampled number.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use telemetry::json::Json;
use telemetry::trace;

/// The variant tag of [`crate::Graph`]'s private `Op` enum; the unit
/// of aggregation for the profiler. Keep in sync with `Op` (the
/// `kind()` mapping in `graph.rs` is exhaustive, so a new `Op` variant
/// fails to compile until it gets a kind).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum OpKind {
    Input,
    Param,
    Gather,
    GatherVar,
    MatMul,
    MatMulT,
    Add,
    Sub,
    Mul,
    Scale,
    AddScalar,
    Relu,
    LeakyRelu,
    Sigmoid,
    Tanh,
    Softplus,
    ConcatCols,
    ConcatRows,
    SumAll,
    MeanAll,
    LogSoftmaxRows,
    PickPerRow,
    SpMM,
    BceWithLogits,
    MseMasked,
    SqSum,
}

impl OpKind {
    /// Every kind, in declaration order (= table index order).
    pub const ALL: [OpKind; 26] = [
        OpKind::Input,
        OpKind::Param,
        OpKind::Gather,
        OpKind::GatherVar,
        OpKind::MatMul,
        OpKind::MatMulT,
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Scale,
        OpKind::AddScalar,
        OpKind::Relu,
        OpKind::LeakyRelu,
        OpKind::Sigmoid,
        OpKind::Tanh,
        OpKind::Softplus,
        OpKind::ConcatCols,
        OpKind::ConcatRows,
        OpKind::SumAll,
        OpKind::MeanAll,
        OpKind::LogSoftmaxRows,
        OpKind::PickPerRow,
        OpKind::SpMM,
        OpKind::BceWithLogits,
        OpKind::MseMasked,
        OpKind::SqSum,
    ];

    pub fn name(self) -> &'static str {
        match self {
            OpKind::Input => "Input",
            OpKind::Param => "Param",
            OpKind::Gather => "Gather",
            OpKind::GatherVar => "GatherVar",
            OpKind::MatMul => "MatMul",
            OpKind::MatMulT => "MatMulT",
            OpKind::Add => "Add",
            OpKind::Sub => "Sub",
            OpKind::Mul => "Mul",
            OpKind::Scale => "Scale",
            OpKind::AddScalar => "AddScalar",
            OpKind::Relu => "Relu",
            OpKind::LeakyRelu => "LeakyRelu",
            OpKind::Sigmoid => "Sigmoid",
            OpKind::Tanh => "Tanh",
            OpKind::Softplus => "Softplus",
            OpKind::ConcatCols => "ConcatCols",
            OpKind::ConcatRows => "ConcatRows",
            OpKind::SumAll => "SumAll",
            OpKind::MeanAll => "MeanAll",
            OpKind::LogSoftmaxRows => "LogSoftmaxRows",
            OpKind::PickPerRow => "PickPerRow",
            OpKind::SpMM => "SpMM",
            OpKind::BceWithLogits => "BceWithLogits",
            OpKind::MseMasked => "MseMasked",
            OpKind::SqSum => "SqSum",
        }
    }
}

/// One row of atomic aggregates. All `Relaxed`: rows are statistics,
/// not synchronization.
#[derive(Default)]
struct Cell {
    fwd_calls: AtomicU64,
    fwd_ns: AtomicU64,
    bwd_calls: AtomicU64,
    bwd_ns: AtomicU64,
    /// Output elements produced across all forward calls.
    elems: AtomicU64,
    /// Estimated floating-point operations (see `Graph`'s
    /// `flop_estimate`) across all forward calls.
    flops: AtomicU64,
    /// Estimated floating-point operations (see `Graph`'s
    /// `bwd_flop_estimate`) across all backward calls.
    bwd_flops: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_CELL: Cell = Cell {
    fwd_calls: AtomicU64::new(0),
    fwd_ns: AtomicU64::new(0),
    bwd_calls: AtomicU64::new(0),
    bwd_ns: AtomicU64::new(0),
    elems: AtomicU64::new(0),
    flops: AtomicU64::new(0),
    bwd_flops: AtomicU64::new(0),
};

static TABLE: [Cell; OpKind::ALL.len()] = [EMPTY_CELL; OpKind::ALL.len()];

/// Timer guard for one op execution: records elapsed wall time into
/// the forward or backward column on drop. Inert when tracing is off.
pub struct OpTimer {
    open: Option<(OpKind, bool, Instant)>,
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        let Some((kind, backward, start)) = self.open.take() else {
            return;
        };
        let ns = start.elapsed().as_nanos() as u64;
        let cell = &TABLE[kind as usize];
        if backward {
            cell.bwd_calls.fetch_add(1, Relaxed);
            cell.bwd_ns.fetch_add(ns, Relaxed);
        } else {
            cell.fwd_calls.fetch_add(1, Relaxed);
            cell.fwd_ns.fetch_add(ns, Relaxed);
        }
    }
}

/// Whether profiling is on (shared flag with [`telemetry::trace`]).
#[inline]
pub fn enabled() -> bool {
    trace::is_enabled()
}

fn timer(kind: OpKind, backward: bool) -> OpTimer {
    if !trace::is_enabled() {
        return OpTimer { open: None };
    }
    OpTimer {
        open: Some((kind, backward, Instant::now())),
    }
}

/// Starts timing a forward execution of `kind`.
#[inline]
pub fn fwd(kind: OpKind) -> OpTimer {
    timer(kind, false)
}

/// Starts timing the backward (vector-Jacobian product) of `kind`.
#[inline]
pub fn bwd(kind: OpKind) -> OpTimer {
    timer(kind, true)
}

/// Adds one forward call's output size and FLOP estimate.
#[inline]
pub fn record_dims(kind: OpKind, elems: u64, flops: u64) {
    if !trace::is_enabled() {
        return;
    }
    let cell = &TABLE[kind as usize];
    cell.elems.fetch_add(elems, Relaxed);
    cell.flops.fetch_add(flops, Relaxed);
}

/// Adds one backward call's FLOP estimate.
#[inline]
pub fn record_bwd_dims(kind: OpKind, flops: u64) {
    if !trace::is_enabled() {
        return;
    }
    TABLE[kind as usize].bwd_flops.fetch_add(flops, Relaxed);
}

/// Zeroes the whole table (start of a profiled run).
pub fn reset() {
    for cell in &TABLE {
        cell.fwd_calls.store(0, Relaxed);
        cell.fwd_ns.store(0, Relaxed);
        cell.bwd_calls.store(0, Relaxed);
        cell.bwd_ns.store(0, Relaxed);
        cell.elems.store(0, Relaxed);
        cell.flops.store(0, Relaxed);
        cell.bwd_flops.store(0, Relaxed);
    }
}

/// Point-in-time copy of one [`OpKind`]'s aggregates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpProfileRow {
    pub kind: OpKind,
    pub fwd_calls: u64,
    pub fwd_ns: u64,
    pub bwd_calls: u64,
    pub bwd_ns: u64,
    pub elems: u64,
    pub flops: u64,
    pub bwd_flops: u64,
}

impl OpProfileRow {
    /// Forward + backward wall time — the op's *self* time (tape ops
    /// never nest, so total and self coincide).
    pub fn total_ns(&self) -> u64 {
        self.fwd_ns + self.bwd_ns
    }
}

/// Snapshot of the whole profile table, sorted by self time
/// descending, zero-activity kinds omitted.
#[derive(Clone, Debug, Default)]
pub struct OpProfile {
    pub rows: Vec<OpProfileRow>,
}

impl OpProfile {
    /// Total op wall time (forward + backward over every kind).
    pub fn total_ns(&self) -> u64 {
        self.rows.iter().map(OpProfileRow::total_ns).sum()
    }

    /// Renders as a JSON array of per-kind objects (the `"opProfile"`
    /// field of a trace file).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    Json::obj()
                        .field("op", row.kind.name())
                        .field("fwd_calls", row.fwd_calls)
                        .field("fwd_ns", row.fwd_ns)
                        .field("bwd_calls", row.bwd_calls)
                        .field("bwd_ns", row.bwd_ns)
                        .field("elems", row.elems)
                        .field("flops", row.flops)
                        .field("bwd_flops", row.bwd_flops)
                })
                .collect(),
        )
    }

    /// Parses the `"opProfile"` array back (used by `trace_report`).
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let Json::Arr(rows) = doc else {
            return Err("opProfile is not an array".into());
        };
        let mut profile = OpProfile::default();
        for (i, row) in rows.iter().enumerate() {
            let name = row
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("opProfile[{i}]: missing `op`"))?;
            let kind = OpKind::ALL
                .iter()
                .copied()
                .find(|k| k.name() == name)
                .ok_or_else(|| format!("opProfile[{i}]: unknown op `{name}`"))?;
            let field = |key: &str| -> Result<u64, String> {
                row.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("opProfile[{i}]: missing `{key}`"))
            };
            profile.rows.push(OpProfileRow {
                kind,
                fwd_calls: field("fwd_calls")?,
                fwd_ns: field("fwd_ns")?,
                bwd_calls: field("bwd_calls")?,
                bwd_ns: field("bwd_ns")?,
                elems: field("elems")?,
                flops: field("flops")?,
                // Tolerant: absent in pre-PR7 trace files.
                bwd_flops: row.get("bwd_flops").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        Ok(profile)
    }
}

/// Copies the live table into an [`OpProfile`], sorted by self time
/// descending with inactive kinds dropped.
pub fn snapshot() -> OpProfile {
    let mut rows: Vec<OpProfileRow> = OpKind::ALL
        .iter()
        .map(|&kind| {
            let cell = &TABLE[kind as usize];
            OpProfileRow {
                kind,
                fwd_calls: cell.fwd_calls.load(Relaxed),
                fwd_ns: cell.fwd_ns.load(Relaxed),
                bwd_calls: cell.bwd_calls.load(Relaxed),
                bwd_ns: cell.bwd_ns.load(Relaxed),
                elems: cell.elems.load(Relaxed),
                flops: cell.flops.load(Relaxed),
                bwd_flops: cell.bwd_flops.load(Relaxed),
            }
        })
        .filter(|row| row.fwd_calls > 0 || row.bwd_calls > 0)
        .collect();
    rows.sort_by(|a, b| {
        b.total_ns()
            .cmp(&a.total_ns())
            .then(a.kind.name().cmp(b.kind.name()))
    });
    OpProfile { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GradStore, Graph, Matrix, ParamSet};

    #[test]
    fn forward_and_backward_are_profiled_when_enabled() {
        // Profiling is gated on the global tracing flag; this test owns
        // it for its duration (no other tensor test enables tracing).
        reset();
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::full(4, 3, 0.5));
        let mut grads = GradStore::zeros_like(&params);

        // Disabled: the table must stay empty.
        {
            let mut g = Graph::new(&params);
            let x = g.input(Matrix::full(2, 4, 1.0));
            let wv = g.param(w);
            let y = g.matmul(x, wv);
            let loss = g.sq_sum(y);
            g.backward(loss, &mut grads);
        }
        assert!(
            snapshot().rows.is_empty(),
            "profiling off must record nothing"
        );

        trace::enable();
        {
            let mut g = Graph::new(&params);
            let x = g.input(Matrix::full(2, 4, 1.0));
            let wv = g.param(w);
            let y = g.matmul(x, wv);
            let s = g.sigmoid(y);
            let loss = g.sq_sum(s);
            g.backward(loss, &mut grads);
        }
        {
            // Second graph pins the transpose-product and pick paths.
            let mut g = Graph::new(&params);
            let x = g.input(Matrix::full(2, 4, 0.1));
            let b = g.input(Matrix::full(3, 4, 0.2));
            let y = g.matmul_t(x, b); // 2x3
            let lsm = g.log_softmax_rows(y);
            let p = g.pick_per_row(lsm, &[0, 2]);
            let loss = g.sum_all(p);
            g.backward(loss, &mut grads);
        }
        trace::disable();

        let profile = snapshot();
        let row = |kind: OpKind| {
            profile
                .rows
                .iter()
                .find(|r| r.kind == kind)
                .unwrap_or_else(|| panic!("{} missing from profile", kind.name()))
                .clone()
        };
        let mm = row(OpKind::MatMul);
        assert_eq!(mm.fwd_calls, 1);
        assert_eq!(mm.bwd_calls, 1);
        assert_eq!(mm.elems, 6); // 2x4 · 4x3 = 2x3 output
        assert_eq!(mm.flops, 2 * 4 * 6); // 2·k·out
        assert_eq!(mm.bwd_flops, 4 * 4 * 6); // dA + dB: 2x forward
        let sig = row(OpKind::Sigmoid);
        assert_eq!(sig.flops, 4 * 6);
        assert_eq!(sig.bwd_flops, 3 * 6);
        // MatMulT shares the forward formula (shared dim = a.cols) and
        // the two-products backward.
        let mmt = row(OpKind::MatMulT);
        assert_eq!(mmt.elems, 6); // 2x4 · (3x4)^T = 2x3 output
        assert_eq!(mmt.flops, 2 * 4 * 6);
        assert_eq!(mmt.bwd_flops, 4 * 4 * 6);
        // PickPerRow is a copy forward and a sparse scatter backward.
        let pick = row(OpKind::PickPerRow);
        assert_eq!(pick.flops, 0);
        assert_eq!(pick.bwd_flops, 2 * 2);
        let lsm = row(OpKind::LogSoftmaxRows);
        assert_eq!(lsm.flops, 5 * 6);
        assert_eq!(lsm.bwd_flops, 4 * 6);
        // Input/Param appear forward-only or with trivial backwards;
        // every row that ran must carry a forward call.
        assert!(profile
            .rows
            .iter()
            .all(|r| r.fwd_calls > 0 || r.bwd_calls > 0));
        assert!(profile.total_ns() > 0, "timers must accumulate wall time");

        // JSON round-trip used by trace files.
        let doc = telemetry::json::parse(&profile.to_json().render()).expect("renders");
        let back = OpProfile::from_json(&doc).expect("parses");
        assert_eq!(back.rows, profile.rows);
        reset();
        assert!(snapshot().rows.is_empty());
    }
}
