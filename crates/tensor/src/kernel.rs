//! Cache-blocked, pool-parallel matmul kernels behind [`crate::Matrix`].
//!
//! Three products cover every hot path on the tape: `A·B` (`matmul`),
//! `A·Bᵀ` (`matmul_t`, the logits-against-embedding-table shape) and
//! `Aᵀ·B` (`t_matmul`, the weight-gradient shape). All three reduce to
//! one accumulation structure
//!
//! ```text
//! out[i][j] += lhs(i, k) * rhs[k][j]      for k = 0, 1, 2, ... ascending
//! ```
//!
//! where `rhs` is traversed row-major along the shared dimension `k`
//! (so the inner loop over `j` is contiguous and vectorizes) and `lhs`
//! is either row-major (`lhs(i, k) = a[i*ac + k]`, a scalar per `j`
//! sweep) or `k`-major (`lhs(i, k) = a[k*m + i]`, the natural layout of
//! `t_matmul`'s transposed operand). `matmul_t` materializes `Bᵀ` into
//! a thread-local scratch first — an `O(R·e)` copy that converts the
//! serial column-strided dot products of the naive form into the same
//! contiguous-`j` kernel, breaking the one-chain-per-element FMA
//! dependency that capped it near 1.5 GFLOP/s.
//!
//! ## Bit-exactness contract
//!
//! Every kernel — blocked, parallel, or reference — feeds each output
//! element its `k` contributions *in ascending order through a single
//! accumulator chain starting at `+0.0`*. The register micro-tiles and
//! `k`-blocks only reorder work *across* output elements: `k`-blocks
//! run in ascending order with partial sums parked in `out` between
//! blocks (an exact f32 store/load round-trip), so per element the
//! chain is unbroken. The parallel dispatch partitions output **rows** into
//! fixed-size chunks whose size depends only on the operand shapes —
//! never on the thread count — with each chunk written by exactly one
//! job through a disjoint `&mut` slab. There is no merge step and no
//! reduction tree, so results are fully bit-identical at any thread
//! count, and match the naive reference bit-for-bit on every non-NaN
//! value. (NaN *sign/payload* may differ from the reference: IEEE 754
//! leaves NaN propagation to the implementation, and instruction
//! operand order differs between loop shapes — NaN-ness itself always
//! agrees elementwise.) The references (and the kernels) have no
//! `== 0.0` fast path: `0.0 * NaN` is `NaN` and `0.0 * inf` is `NaN`,
//! exactly as IEEE 754 demands, so non-finite blowups propagate
//! instead of being silently zeroed (DESIGN.md §5g).
//!
//! All entry points require `out` to be zero-filled by the caller
//! (`Matrix` allocates zeroed; the graph arena re-zeroes recycled
//! buffers), and accumulate into it.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// Worker threads the implicit entry points on [`crate::Matrix`] may
/// use. Defaults to 1 (fully serial); the trainer sets it from its
/// `threads` knob. Thread count never changes results (see the module
/// docs), only wall time.
static THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide kernel thread budget, clamped to
/// `[1, available cores]`: oversubscribing a small machine only adds
/// dispatch overhead (results are thread-count-invariant either way,
/// so the clamp never changes bits).
pub fn set_threads(threads: usize) {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    THREADS.store(threads.clamp(1, cores), Relaxed);
}

/// The current process-wide kernel thread budget.
pub fn threads() -> usize {
    THREADS.load(Relaxed)
}

/// Rows per register micro-tile.
const MR: usize = 4;
/// Columns per register micro-tile (two 8-lane f32 vectors).
const NR: usize = 16;
/// `k`-block length: bounds the `rhs` strip each sweep touches so it
/// stays cache-resident. Blocks are visited in ascending order and
/// partial sums park in `out` between blocks, so every element still
/// receives its `k` contributions through one ascending chain.
const KC: usize = 512;

/// Minimum FLOPs before the parallel dispatch is worth its batch
/// bookkeeping; below this everything runs inline on the caller.
const PAR_MIN_FLOPS: usize = 1 << 20;
/// Target FLOPs per parallel chunk. Chunk size is a function of shape
/// only, so the row partition is identical at every thread count.
const PAR_CHUNK_FLOPS: usize = 1 << 22;

/// How the shared dimension is laid out in the left operand.
#[derive(Copy, Clone)]
enum Lhs<'a> {
    /// `lhs(i, k) = a[i*ac + k]` — `A` row-major (matmul, matmul_t).
    RowMajor { a: &'a [f32], ac: usize },
    /// `lhs(i, k) = a[k*m + i]` — the shared dim is `A`'s row axis
    /// (t_matmul reads its operand in storage order).
    KMajor { a: &'a [f32], m: usize },
}

#[inline(always)]
fn lhs_at(lhs: Lhs<'_>, i: usize, k: usize) -> f32 {
    match lhs {
        Lhs::RowMajor { a, ac } => a[i * ac + k],
        Lhs::KMajor { a, m } => a[k * m + i],
    }
}

/// `MR x NR` register micro-tile over one `k`-block: accumulators live
/// in registers across the whole block, cutting `out` traffic to one
/// load + one store per block (the element-pass form reloads every
/// output row once per `k`). Each accumulator lane is one element's
/// chain, fed `k` ascending — bit-identical to the naive loop.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_body(
    lhs: Lhs<'_>,
    i0: usize,
    i: usize,
    k0: usize,
    kw: usize,
    rhs: &[f32],
    n: usize,
    j0: usize,
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_r) in acc.iter_mut().enumerate() {
        acc_r.copy_from_slice(&out[(i + r) * n + j0..][..NR]);
    }
    for k in k0..k0 + kw {
        let rv: &[f32; NR] = rhs[k * n + j0..][..NR].try_into().unwrap();
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let lv = lhs_at(lhs, i0 + i + r, k);
            for (o, &x) in acc_r.iter_mut().zip(rv) {
                *o += lv * x;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        out[(i + r) * n + j0..][..NR].copy_from_slice(acc_r);
    }
}

#[allow(clippy::too_many_arguments)]
fn micro_portable(
    lhs: Lhs<'_>,
    i0: usize,
    i: usize,
    k0: usize,
    kw: usize,
    rhs: &[f32],
    n: usize,
    j0: usize,
    out: &mut [f32],
) {
    micro_body(lhs, i0, i, k0, kw, rhs, n, j0, out);
}

/// The same micro-tile compiled for AVX2 (8-lane f32) and selected at
/// runtime. Only the matmul micro-kernel is feature-gated: building
/// the whole crate for a wider ISA slows the libm-bound elementwise
/// ops (AVX↔SSE transition penalties around every `expf`/`tanhf`
/// call), while the micro-tile is pure mul/add and only gets wider
/// lanes. Vector width never changes results — each output element
/// keeps its own scalar-order accumulation chain (no horizontal
/// reductions, no float contraction), so portable and AVX2 copies
/// agree bit-for-bit on every non-NaN value.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn micro_avx2(
    lhs: Lhs<'_>,
    i0: usize,
    i: usize,
    k0: usize,
    kw: usize,
    rhs: &[f32],
    n: usize,
    j0: usize,
    out: &mut [f32],
) {
    micro_body(lhs, i0, i, k0, kw, rhs, n, j0, out);
}

/// Picks the widest micro-kernel the host supports (cached by std's
/// feature-detection macro). The choice is a property of the machine,
/// not of the thread count or shape, so dispatch cannot introduce
/// nondeterminism within a run.
fn micro_kernel() -> MicroFn {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: gated on runtime AVX2 detection; the function body
        // is ordinary safe Rust, only its codegen needs the feature.
        return |lhs, i0, i, k0, kw, rhs, n, j0, out| unsafe {
            micro_avx2(lhs, i0, i, k0, kw, rhs, n, j0, out)
        };
    }
    micro_portable
}

type MicroFn = fn(Lhs<'_>, usize, usize, usize, usize, &[f32], usize, usize, &mut [f32]);

/// Element-pass fallback for edge rows/columns: same accumulation
/// order as the micro-tile, no register blocking.
#[allow(clippy::too_many_arguments)]
fn scalar_edge(
    lhs: Lhs<'_>,
    i0: usize,
    k0: usize,
    kw: usize,
    ilo: usize,
    ihi: usize,
    rhs: &[f32],
    n: usize,
    jlo: usize,
    jhi: usize,
    out: &mut [f32],
) {
    for k in k0..k0 + kw {
        let rhs_row = &rhs[k * n + jlo..k * n + jhi];
        for ii in ilo..ihi {
            let lv = lhs_at(lhs, i0 + ii, k);
            let out_row = &mut out[ii * n + jlo..ii * n + jhi];
            for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                *o += lv * r;
            }
        }
    }
}

/// Accumulates `out[i0..i0+iw) x [0, n)` of `lhs · rhs`; `out` is the
/// slab for exactly those rows. `k` contributions ascend per element:
/// `k`-blocks run in ascending order (partial sums parked in `out`
/// between blocks), and within a block each element is touched by
/// exactly one micro-tile or edge pass, again with `k` ascending.
fn block(lhs: Lhs<'_>, k_dim: usize, i0: usize, iw: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), iw * n);
    if n == 0 || iw == 0 || k_dim == 0 {
        return;
    }
    let micro = micro_kernel();
    let n_main = n - n % NR;
    let i_main = iw - iw % MR;
    let mut k0 = 0;
    while k0 < k_dim {
        let kw = KC.min(k_dim - k0);
        let mut j0 = 0;
        while j0 < n_main {
            let mut i = 0;
            while i < i_main {
                micro(lhs, i0, i, k0, kw, rhs, n, j0, out);
                i += MR;
            }
            if i < iw {
                scalar_edge(lhs, i0, k0, kw, i, iw, rhs, n, j0, j0 + NR, out);
            }
            j0 += NR;
        }
        if n_main < n {
            scalar_edge(lhs, i0, k0, kw, 0, iw, rhs, n, n_main, n, out);
        }
        k0 += kw;
    }
}

/// Shared dispatch: partitions the `out_rows` of the product into
/// shape-determined chunks and runs them over the global worker pool
/// when the work is large enough, inline otherwise.
fn run_blocked(lhs: Lhs<'_>, k_dim: usize, rhs: &[f32], n: usize, out: &mut [f32], threads: usize) {
    let out_rows = out.len().checked_div(n).unwrap_or(0);
    debug_assert_eq!(out.len(), out_rows * n);
    let flops_per_row = 2 * k_dim * n;
    let total_flops = flops_per_row * out_rows;
    // Chunks are rounded to a micro-tile multiple so every chunk's
    // micro/edge row split matches the serial full-slab pass — the
    // instruction path per row (and so even NaN payload propagation)
    // is then identical at every thread count.
    let chunk_rows = PAR_CHUNK_FLOPS
        .div_ceil(flops_per_row.max(1))
        .next_multiple_of(MR)
        .clamp(1, out_rows.max(1));
    if threads <= 1 || total_flops < PAR_MIN_FLOPS || chunk_rows >= out_rows {
        block(lhs, k_dim, 0, out_rows, rhs, n, out);
        return;
    }
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .chunks_mut(chunk_rows * n)
        .enumerate()
        .map(|(c, slab)| {
            let i0 = c * chunk_rows;
            let iw = slab.len() / n;
            Box::new(move || block(lhs, k_dim, i0, iw, rhs, n, slab)) as Box<dyn FnOnce() + Send>
        })
        .collect();
    runtime::global().run(threads, jobs);
}

/// `out += A·B` for row-major `a` (`ar x ac`) and `b` (`ac x bc`);
/// `out` is `ar x bc`, zero-filled by the caller.
pub fn matmul(
    a: &[f32],
    ar: usize,
    ac: usize,
    b: &[f32],
    bc: usize,
    out: &mut [f32],
    threads: usize,
) {
    debug_assert_eq!(a.len(), ar * ac);
    debug_assert_eq!(b.len(), ac * bc);
    debug_assert_eq!(out.len(), ar * bc);
    run_blocked(Lhs::RowMajor { a, ac }, ac, b, bc, out, threads);
}

/// `out += Aᵀ·B` for row-major `a` (`k x ac`) and `b` (`k x bc`);
/// `out` is `ac x bc`, zero-filled by the caller. `a` is consumed in
/// storage order (its row axis *is* the shared dimension).
pub fn t_matmul(
    a: &[f32],
    k: usize,
    ac: usize,
    b: &[f32],
    bc: usize,
    out: &mut [f32],
    threads: usize,
) {
    debug_assert_eq!(a.len(), k * ac);
    debug_assert_eq!(b.len(), k * bc);
    debug_assert_eq!(out.len(), ac * bc);
    run_blocked(Lhs::KMajor { a, m: ac }, k, b, bc, out, threads);
}

thread_local! {
    /// Reusable `Bᵀ` scratch for [`matmul_t`]. Taken (not borrowed)
    /// around each use, so re-entrant calls degrade to a fresh
    /// allocation instead of a borrow panic.
    static TRANSPOSE_SCRATCH: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// `out += A·Bᵀ` for row-major `a` (`ar x ac`) and `b` (`br x ac`);
/// `out` is `ar x br`, zero-filled by the caller. Materializes `Bᵀ`
/// into thread-local scratch, then runs the row-major kernel — the
/// per-element `k` order is identical to the naive dot-product form.
pub fn matmul_t(
    a: &[f32],
    ar: usize,
    ac: usize,
    b: &[f32],
    br: usize,
    out: &mut [f32],
    threads: usize,
) {
    debug_assert_eq!(a.len(), ar * ac);
    debug_assert_eq!(b.len(), br * ac);
    debug_assert_eq!(out.len(), ar * br);
    let mut bt = TRANSPOSE_SCRATCH.with(Cell::take);
    transpose_into(b, br, ac, &mut bt);
    run_blocked(Lhs::RowMajor { a, ac }, ac, &bt, br, out, threads);
    TRANSPOSE_SCRATCH.with(|cell| cell.set(bt));
}

/// Writes the `cols x rows` transpose of row-major `src` into `dst`
/// (tile-blocked so both sides stream through cache lines).
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut Vec<f32>) {
    debug_assert_eq!(src.len(), rows * cols);
    // Every entry is overwritten by the tile loops below, so a recycled
    // scratch keeps its stale contents; `resize` only pays to fill the
    // newly grown region (a no-op in the steady state).
    dst.resize(rows * cols, 0.0);
    const T: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let rh = T.min(rows - r0);
        let mut c0 = 0;
        while c0 < cols {
            let cw = T.min(cols - c0);
            for r in r0..r0 + rh {
                for c in c0..c0 + cw {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 += cw;
        }
        r0 += rh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The parallel row partition must depend on shape alone — spelled
    /// out here because the determinism contract hangs on it.
    #[test]
    fn chunking_is_a_function_of_shape_only() {
        let flops_per_row = 2 * 64 * 300;
        let chunk = PAR_CHUNK_FLOPS.div_ceil(flops_per_row).clamp(1, 500);
        // Same arithmetic regardless of any thread knob.
        assert_eq!(chunk, PAR_CHUNK_FLOPS.div_ceil(flops_per_row).clamp(1, 500));
        assert!(chunk >= 1);
    }

    #[test]
    fn transpose_into_round_trips() {
        let src: Vec<f32> = (0..6 * 70).map(|x| x as f32).collect();
        let mut t = Vec::new();
        transpose_into(&src, 6, 70, &mut t);
        let mut back = Vec::new();
        transpose_into(&t, 70, 6, &mut back);
        assert_eq!(src, back);
    }

    #[test]
    fn degenerate_dims_are_noops() {
        let mut out: Vec<f32> = Vec::new();
        matmul(&[], 0, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, &mut out, 4);
        let mut out = vec![0.0; 4];
        // Shared dim 0: the zeroed output is the correct product.
        matmul(&[], 2, 0, &[], 2, &mut out, 4);
        assert_eq!(out, vec![0.0; 4]);
        let mut out = vec![0.0; 4];
        t_matmul(&[], 0, 2, &[], 2, &mut out, 1);
        assert_eq!(out, vec![0.0; 4]);
    }
}
