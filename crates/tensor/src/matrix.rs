//! Dense row-major `f32` matrix used as the single value type of the
//! autodiff tape.
//!
//! The three matrix products (`matmul`, `t_matmul`, `matmul_t`) route
//! through the cache-blocked, optionally pool-parallel kernels in
//! [`crate::kernel`]; the `*_ref` methods keep the naive loops as the
//! bit-exact reference the kernel-equivalence proptests compare
//! against. Neither path short-circuits on `== 0.0` operands: IEEE
//! semantics (`0.0 * NaN = NaN`, `0.0 * inf = NaN`) must hold so that
//! non-finite blowups propagate instead of being masked.

use std::fmt;

use rand::Rng;

use crate::kernel;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a `1 x n` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self::from_vec(1, cols, data)
    }

    /// Builds a matrix by evaluating `f(r, c)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Uniform random matrix in `[-scale, scale]`.
    pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Xavier/Glorot uniform initialization for a `fan_in x fan_out` weight.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self {
        let scale = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::uniform(fan_in, fan_out, scale, rng)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Entry accessor; debug-asserts bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self * other` via the blocked kernel at the process-wide
    /// thread budget ([`kernel::threads`]).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_threaded(other, kernel::threads())
    }

    /// `self * other` with an explicit thread count; bit-identical to
    /// [`Matrix::matmul_ref`] at every thread count.
    pub fn matmul_threaded(&self, other: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out, threads);
        out
    }

    /// `self * other` accumulated into a zero-filled `out`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul out shape");
        kernel::matmul(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
            threads,
        );
    }

    /// `self^T * other` via the blocked kernel (the transpose is never
    /// materialized: the kernel reads `self` in storage order).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        self.t_matmul_threaded(other, kernel::threads())
    }

    /// `self^T * other` with an explicit thread count.
    pub fn t_matmul_threaded(&self, other: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.t_matmul_into(other, &mut out, threads);
        out
    }

    /// `self^T * other` accumulated into a zero-filled `out`.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.shape(), (self.cols, other.cols), "t_matmul out shape");
        kernel::t_matmul(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
            threads,
        );
    }

    /// `self * other^T` via the blocked kernel (`other^T` is
    /// materialized into thread-local scratch so the inner loop runs
    /// contiguously instead of down a serial dot-product chain).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        self.matmul_t_threaded(other, kernel::threads())
    }

    /// `self * other^T` with an explicit thread count.
    pub fn matmul_t_threaded(&self, other: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_t_into(other, &mut out, threads);
        out
    }

    /// `self * other^T` accumulated into a zero-filled `out`.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.shape(), (self.rows, other.rows), "matmul_t out shape");
        kernel::matmul_t(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
            threads,
        );
    }

    /// Naive `ikj` reference for `self * other`: the definition the
    /// blocked kernels must match bit-for-bit. Each output element
    /// accumulates its `k` contributions in ascending order from
    /// `+0.0`, with no `== 0.0` short-circuit.
    pub fn matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul_ref shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row_slice(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                let b_row = other.row_slice(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// Naive reference for `self^T * other` (same contract as
    /// [`Matrix::matmul_ref`]).
    pub fn t_matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul_ref shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row_slice(k);
            let b_row = other.row_slice(k);
            for (i, &a_ki) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ki * b_kj;
                }
            }
        }
        out
    }

    /// Naive reference for `self * other^T` (same contract as
    /// [`Matrix::matmul_ref`]; the dot-product accumulator starts at
    /// `+0.0` so the `k` chain is identical to the blocked form).
    pub fn matmul_t_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t_ref shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row_slice(i);
            for j in 0..other.rows {
                let b_row = other.row_slice(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scale.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Zeroes every entry without reallocating.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Maximum absolute entry (0 for empty matrices).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Dot product of two same-shape matrices viewed as flat vectors.
    pub fn dot(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_variants_agree() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::uniform(4, 3, 1.0, &mut rng);
        let b = Matrix::uniform(4, 5, 1.0, &mut rng);
        let via_t = a.transpose().matmul(&b);
        let fused = a.t_matmul(&b);
        for (x, y) in via_t.data().iter().zip(fused.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        let c = Matrix::uniform(6, 3, 1.0, &mut rng);
        let d = Matrix::uniform(2, 3, 1.0, &mut rng);
        let via_t2 = c.matmul(&d.transpose());
        let fused2 = c.matmul_t(&d);
        for (x, y) in via_t2.data().iter().zip(fused2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::uniform(5, 7, 2.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0; 4]);
        a.scale_inplace(2.0);
        assert_eq!(a.data(), &[4.0; 4]);
    }

    /// Regression for the old `== 0.0 { continue }` fast path: a zero
    /// row times a NaN/inf column must be NaN (`0 * NaN = NaN`,
    /// `0 * inf = NaN` per IEEE 754), not silently finite.
    #[test]
    fn zero_times_non_finite_is_nan() {
        let zero_row = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let poisoned = Matrix::from_vec(2, 2, vec![f32::NAN, 1.0, 2.0, f32::INFINITY]);

        let mm = zero_row.matmul(&poisoned);
        assert!(mm.at(0, 0).is_nan(), "0*NaN + 0*2 must be NaN");
        assert!(mm.at(0, 1).is_nan(), "0*1 + 0*inf must be NaN");
        assert!(mm.at(1, 1).is_infinite(), "1*1 + 1*inf stays inf");

        // self^T * other with an all-zero column in self.
        let zero_col = Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 1.0]);
        let tm = zero_col.t_matmul(&poisoned);
        assert!(tm.at(0, 0).is_nan());
        assert!(tm.at(0, 1).is_nan());

        // self * other^T: zero row dotted with a NaN-bearing row.
        let mt = zero_row.matmul_t(&poisoned);
        assert!(mt.at(0, 0).is_nan());
        assert!(mt.at(0, 1).is_nan());

        // The naive references agree (NaN == NaN at the bit level).
        for (kernel_out, ref_out) in [
            (mm, zero_row.matmul_ref(&poisoned)),
            (tm, zero_col.t_matmul_ref(&poisoned)),
            (mt, zero_row.matmul_t_ref(&poisoned)),
        ] {
            for (x, y) in kernel_out.data().iter().zip(ref_out.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(1, 4, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.sq_norm(), 30.0);
        assert_eq!(a.max_abs(), 4.0);
    }
}
