//! Small numeric utilities shared across the workspace: stable softmax,
//! categorical sampling, and summary statistics.

use rand::Rng;

/// Stable softmax of a logit slice into a fresh `Vec`.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = out.iter().sum();
    if sum > 0.0 {
        for o in &mut out {
            *o /= sum;
        }
    } else {
        // Degenerate logits (all -inf): fall back to uniform.
        let u = 1.0 / out.len() as f32;
        out.iter_mut().for_each(|o| *o = u);
    }
    out
}

/// Stable log-softmax of a logit slice.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let lse = max + logits.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    logits.iter().map(|&x| x - lse).collect()
}

/// Samples an index from unnormalized logits; returns `(index, log_prob)`.
pub fn sample_categorical(logits: &[f32], rng: &mut impl Rng) -> (usize, f32) {
    assert!(!logits.is_empty(), "cannot sample from empty logits");
    if logits.len() == 2 {
        // Allocation-free fast path for binary decisions — the hot case
        // on tree-structured action spaces.
        let p1 = crate::stable_sigmoid(logits[1] - logits[0]);
        let chosen = usize::from(rng.gen::<f32>() < p1);
        let p = if chosen == 1 { p1 } else { 1.0 - p1 };
        return (chosen, p.max(1e-12).ln());
    }
    let probs = softmax(logits);
    let u: f32 = rng.gen();
    let mut acc = 0.0;
    let mut chosen = probs.len() - 1;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            chosen = i;
            break;
        }
    }
    let lp = log_softmax(logits)[chosen];
    (chosen, lp)
}

/// Index of the maximum entry (first on ties).
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

/// Population standard deviation of a slice (0 for fewer than 2 values).
pub fn std_dev(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / values.len() as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let logits = [0.5, -1.0, 2.0, 0.0];
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (x, y) in p.iter().zip(&lp) {
            assert!((x.ln() - y).abs() < 1e-5);
        }
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(42);
        // Heavily biased logits: index 1 should dominate.
        let logits = [0.0, 5.0, 0.0];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            let (i, lp) = sample_categorical(&logits, &mut rng);
            assert!(lp <= 0.0);
            counts[i] += 1;
        }
        assert!(counts[1] > 1800, "counts={counts:?}");
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-6);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-6);
    }
}
