//! Tape-based reverse-mode automatic differentiation over dense
//! matrices.
//!
//! A [`Graph`] is rebuilt for every forward pass (define-by-run). Every
//! operation evaluates eagerly and records enough information on the
//! tape to compute vector-Jacobian products in a single reverse sweep.
//! Gradients of [`crate::ParamSet`] parameters accumulate into a
//! [`crate::GradStore`], so multiple `backward` calls (e.g. one per
//! sampled trajectory) naturally sum their gradients.
//!
//! Only the operations needed by the PoisonRec reproduction are
//! implemented, each verified against central finite differences in the
//! test suite.

use std::sync::Arc;

use crate::kernel;
use crate::matrix::Matrix;
use crate::params::{GradStore, ParamId, ParamSet};
use crate::profile::{self, OpKind};
use crate::sparse::Csr;

/// Handle to a node on the tape.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// External constant input; no gradient propagates past it.
    Input,
    /// A full parameter matrix.
    Param(ParamId),
    /// Row-gather from a parameter (embedding lookup).
    Gather(ParamId, Vec<u32>),
    /// Row-gather from another tape node.
    GatherVar(Var, Vec<u32>),
    MatMul(Var, Var),
    /// `a * b^T` — logits against an embedding table.
    MatMulT(Var, Var),
    /// `a * P` with the parameter read in place: no `Param` copy lands
    /// on the tape and `dP` goes straight to the [`GradStore`].
    /// Bit-equal to `matmul(a, param(p))`.
    MatMulParam(Var, ParamId),
    /// `a * P^T`, fused like [`Op::MatMulParam`].
    MatMulTParam(Var, ParamId),
    /// `a + P` where `P` is a `1 x cols` parameter row broadcast over
    /// the rows of `a` (fused bias add).
    AddRowParam(Var, ParamId),
    /// Same-shape addition, or `b` is a `1 x cols` row broadcast over
    /// the rows of `a`.
    Add(Var, Var),
    Sub(Var, Var),
    /// Elementwise product (same shapes).
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Sigmoid(Var),
    Tanh(Var),
    Softplus(Var),
    ConcatCols(Var, Var),
    ConcatRows(Var, Var),
    SumAll(Var),
    MeanAll(Var),
    /// Row-wise log-softmax.
    LogSoftmaxRows(Var),
    /// Picks `x[r, idx[r]]` for every row into an `rows x 1` column.
    PickPerRow(Var, Vec<u32>),
    /// `pick_per_row(log_softmax_rows(a), idx)` fused: only the picked
    /// log-probs are materialized; the per-row log-sum-exp is cached so
    /// the backward can reconstruct `lp[c] = x[c] - lse` bit-exactly.
    LogSoftmaxPick(Var, Vec<u32>, Vec<f32>),
    /// `sparse * dense`; the sparse operand is constant.
    SpMM(Arc<Csr>, Var),
    /// Mean binary cross-entropy with logits, weighted by `mask`.
    BceWithLogits {
        logits: Var,
        targets: Matrix,
        mask: Matrix,
    },
    /// Mean squared error restricted to `mask` entries.
    MseMasked {
        pred: Var,
        targets: Matrix,
        mask: Matrix,
    },
    /// Sum of squared entries (L2 regularizer building block).
    SqSum(Var),
}

impl Op {
    /// The profiler aggregation key. Exhaustive on purpose: adding an
    /// `Op` variant without classifying it is a compile error.
    fn kind(&self) -> OpKind {
        match self {
            Op::Input => OpKind::Input,
            Op::Param(..) => OpKind::Param,
            Op::Gather(..) => OpKind::Gather,
            Op::GatherVar(..) => OpKind::GatherVar,
            Op::MatMul(..) | Op::MatMulParam(..) => OpKind::MatMul,
            Op::MatMulT(..) | Op::MatMulTParam(..) => OpKind::MatMulT,
            Op::AddRowParam(..) => OpKind::Add,
            Op::Add(..) => OpKind::Add,
            Op::Sub(..) => OpKind::Sub,
            Op::Mul(..) => OpKind::Mul,
            Op::Scale(..) => OpKind::Scale,
            Op::AddScalar(..) => OpKind::AddScalar,
            Op::Relu(..) => OpKind::Relu,
            Op::LeakyRelu(..) => OpKind::LeakyRelu,
            Op::Sigmoid(..) => OpKind::Sigmoid,
            Op::Tanh(..) => OpKind::Tanh,
            Op::Softplus(..) => OpKind::Softplus,
            Op::ConcatCols(..) => OpKind::ConcatCols,
            Op::ConcatRows(..) => OpKind::ConcatRows,
            Op::SumAll(..) => OpKind::SumAll,
            Op::MeanAll(..) => OpKind::MeanAll,
            Op::LogSoftmaxRows(..) | Op::LogSoftmaxPick(..) => OpKind::LogSoftmaxRows,
            Op::PickPerRow(..) => OpKind::PickPerRow,
            Op::SpMM(..) => OpKind::SpMM,
            Op::BceWithLogits { .. } => OpKind::BceWithLogits,
            Op::MseMasked { .. } => OpKind::MseMasked,
            Op::SqSum(..) => OpKind::SqSum,
        }
    }
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Whether `indices` is a consecutive ascending run (`i, i+1, ...`),
/// letting gather/scatter paths move one contiguous block instead of
/// one row at a time.
fn is_consecutive(indices: &[u32]) -> bool {
    indices.windows(2).all(|w| w[1] == w[0].wrapping_add(1))
}

/// Freelist of `f32` buffers recycled between graphs, segregated into
/// power-of-two capacity classes so `take` is O(1) on the hot path
/// (the tape allocates one buffer per node per sweep — a linear scan
/// here dominated small-op time). Buffers come back cleared, so every
/// consumer rebuilds contents from scratch (reuse can never leak
/// stale values into results).
#[derive(Default)]
struct BufferPool {
    /// `classes[c]` holds buffers whose capacity `v` has bit width `c`
    /// (`v in [2^(c-1), 2^c)`), so every buffer in class `c` holds at
    /// least `2^(c-1)` elements.
    classes: Vec<Vec<Vec<f32>>>,
    held: usize,
}

/// Bit width of `v`: the index of the capacity class it belongs to.
fn class_of(v: usize) -> usize {
    (usize::BITS - v.leading_zeros()) as usize
}

impl BufferPool {
    /// Cap on retained buffers: a runaway tape must not turn the pool
    /// into an unbounded leak.
    const MAX_FREE: usize = 512;
    /// Classes above the request searched by `take` before giving up
    /// and allocating fresh — bounded so a tiny request never steals
    /// (and then shrinks the pool's supply of) a huge buffer.
    const CLASS_SLACK: usize = 3;

    fn take(&mut self, len: usize) -> Vec<f32> {
        if self.held > 0 {
            let own = class_of(len);
            let top = (own + Self::CLASS_SLACK).min(self.classes.len() - 1);
            // The request's own class needs a capacity check (it spans
            // capacities on both sides of `len`); higher classes are
            // all guaranteed fits, newest first.
            if let Some(pos) = self
                .classes
                .get(own)
                .and_then(|bin| bin.iter().rposition(|b| b.capacity() >= len))
            {
                self.held -= 1;
                return self.classes[own].swap_remove(pos);
            }
            for c in own + 1..=top {
                if let Some(buf) = self.classes.get_mut(c).and_then(Vec::pop) {
                    self.held -= 1;
                    return buf;
                }
            }
        }
        Vec::with_capacity(len)
    }

    fn put(&mut self, mut buf: Vec<f32>) {
        if self.held >= Self::MAX_FREE || buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let c = class_of(buf.capacity());
        if self.classes.len() <= c {
            self.classes.resize_with(c + 1, Vec::new);
        }
        self.classes[c].push(buf);
        self.held += 1;
    }

    fn recycle(&mut self, m: Matrix) {
        self.put(m.into_vec());
    }

    fn zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut buf = self.take(rows * cols);
        buf.resize(rows * cols, 0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    fn full(&mut self, rows: usize, cols: usize, value: f32) -> Matrix {
        let mut buf = self.take(rows * cols);
        buf.resize(rows * cols, value);
        Matrix::from_vec(rows, cols, buf)
    }

    fn collect(&mut self, rows: usize, cols: usize, it: impl Iterator<Item = f32>) -> Matrix {
        let mut buf = self.take(rows * cols);
        buf.extend(it);
        Matrix::from_vec(rows, cols, buf)
    }

    fn copy_of(&mut self, m: &Matrix) -> Matrix {
        let mut buf = self.take(m.len());
        buf.extend_from_slice(m.data());
        Matrix::from_vec(m.rows(), m.cols(), buf)
    }
}

/// Reusable allocations for define-by-run training loops: the node
/// tape, the backward adjoint slots, and a [`BufferPool`] of matrix
/// storage. Build graphs with [`Graph::new_in`] and hand them back
/// with [`Graph::retire`]; each trainer step then reuses the previous
/// step's buffers instead of reallocating one `Matrix` per node per
/// sweep. The arena is plain scratch — it holds no model state, so
/// checkpoint formats and results are unaffected by when (or whether)
/// it is recycled.
#[derive(Default)]
pub struct GraphArena {
    pool: BufferPool,
    nodes: Vec<Node>,
    adj: Vec<Option<Adjoint>>,
}

impl GraphArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers currently parked in the arena (diagnostics/tests).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.held
    }
}

/// One node's pending gradient during the backward sweep.
enum Adjoint {
    Dense(Matrix),
    /// Sparse one-entry-per-row gradient: entry `(r, idx[r]) = val[r]`,
    /// zero elsewhere. Produced by `PickPerRow`'s backward so the hot
    /// pick-from-log-softmax pipeline never materializes (or
    /// zero-fills) a dense `K x R` matrix per call.
    RowSelect {
        rows: usize,
        cols: usize,
        idx: Vec<u32>,
        val: Vec<f32>,
    },
}

impl Adjoint {
    fn into_dense(self, pool: &mut BufferPool) -> Matrix {
        match self {
            Adjoint::Dense(m) => m,
            Adjoint::RowSelect {
                rows,
                cols,
                idx,
                val,
            } => {
                let mut m = pool.zeros(rows, cols);
                for (r, (&c, &v)) in idx.iter().zip(&val).enumerate() {
                    m.set(r, c as usize, v);
                }
                m
            }
        }
    }
}

/// Define-by-run autodiff tape borrowing a [`ParamSet`].
pub struct Graph<'p> {
    params: &'p ParamSet,
    nodes: Vec<Node>,
    pool: BufferPool,
    /// Backward scratch (empty between sweeps; kept for its capacity).
    adj: Vec<Option<Adjoint>>,
}

impl<'p> Graph<'p> {
    pub fn new(params: &'p ParamSet) -> Self {
        Self {
            params,
            nodes: Vec::with_capacity(64),
            pool: BufferPool::default(),
            adj: Vec::new(),
        }
    }

    /// Builds a graph drawing its allocations from `arena` (see
    /// [`GraphArena`]). Results are identical to [`Graph::new`]; only
    /// allocation traffic differs.
    pub fn new_in(params: &'p ParamSet, arena: &mut GraphArena) -> Self {
        let mut nodes = std::mem::take(&mut arena.nodes);
        nodes.clear();
        let mut adj = std::mem::take(&mut arena.adj);
        adj.clear();
        Self {
            params,
            nodes,
            pool: std::mem::take(&mut arena.pool),
            adj,
        }
    }

    /// Returns every buffer this graph owns to `arena` for the next
    /// [`Graph::new_in`] to reuse.
    pub fn retire(mut self, arena: &mut GraphArena) {
        for node in self.nodes.drain(..) {
            self.pool.recycle(node.value);
        }
        arena.nodes = self.nodes;
        arena.adj = self.adj;
        arena.pool = self.pool;
    }

    /// Number of tape nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        if profile::enabled() {
            profile::record_dims(
                op.kind(),
                value.len() as u64,
                self.flop_estimate(&op, &value),
            );
        }
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// Order-of-magnitude FLOP count for one forward execution of
    /// `op`, from the operand shapes. Copies (gathers, concats, picks)
    /// count zero; transcendental activations count a flat 4 per
    /// element. Good enough to rank ops and compute achieved-FLOP
    /// rates in `trace_report` — not a cycle-accurate model.
    fn flop_estimate(&self, op: &Op, value: &Matrix) -> u64 {
        let out = value.len() as u64;
        let in_elems = |v: &Var| {
            let (r, c) = self.shape(*v);
            (r * c) as u64
        };
        match op {
            Op::Input | Op::Param(..) | Op::Gather(..) | Op::GatherVar(..) => 0,
            Op::ConcatCols(..) | Op::ConcatRows(..) | Op::PickPerRow(..) => 0,
            // m×k · k×n: one multiply + one add per output per k
            // (for MatMulT the shared dim is also `a`'s cols).
            Op::MatMul(a, _)
            | Op::MatMulT(a, _)
            | Op::MatMulParam(a, _)
            | Op::MatMulTParam(a, _) => 2 * self.shape(*a).1 as u64 * out,
            Op::Add(..) | Op::Sub(..) | Op::Mul(..) | Op::Scale(..) | Op::AddScalar(..) => out,
            Op::AddRowParam(..) => out,
            Op::Relu(..) | Op::LeakyRelu(..) => out,
            Op::Sigmoid(..) | Op::Tanh(..) | Op::Softplus(..) => 4 * out,
            Op::SumAll(a) | Op::MeanAll(a) => in_elems(a),
            Op::SqSum(a) => 2 * in_elems(a),
            // exp + subtract + max/sum passes per element.
            Op::LogSoftmaxRows(a) => 5 * in_elems(a),
            // Same exp/sum work as a full log-softmax, minus the
            // full-matrix subtract pass.
            Op::LogSoftmaxPick(a, ..) => 4 * in_elems(a),
            Op::SpMM(sparse, _) => 2 * sparse.nnz() as u64 * value.cols() as u64,
            Op::BceWithLogits { logits, .. } => 6 * in_elems(logits),
            Op::MseMasked { pred, .. } => 3 * in_elems(pred),
        }
    }

    // ---- leaf constructors -------------------------------------------------

    /// Registers an external constant.
    pub fn input(&mut self, value: Matrix) -> Var {
        let _t = profile::fwd(OpKind::Input);
        self.push(value, Op::Input)
    }

    /// Brings a whole parameter matrix onto the tape.
    pub fn param(&mut self, id: ParamId) -> Var {
        let _t = profile::fwd(OpKind::Param);
        let value = self.pool.copy_of(self.params.get(id));
        self.push(value, Op::Param(id))
    }

    /// Embedding lookup: gathers `indices` rows of parameter `id`.
    /// A consecutive run of indices (the common "whole candidate
    /// range" case in the policy replay) is copied as one block.
    pub fn gather(&mut self, id: ParamId, indices: &[u32]) -> Var {
        let _t = profile::fwd(OpKind::Gather);
        let table = self.params.get(id);
        let cols = table.cols();
        let mut value = self.pool.zeros(indices.len(), cols);
        if let Some(&start) = indices.first().filter(|_| is_consecutive(indices)) {
            let start = start as usize * cols;
            value
                .data_mut()
                .copy_from_slice(&table.data()[start..start + indices.len() * cols]);
        } else {
            for (r, &idx) in indices.iter().enumerate() {
                value
                    .row_slice_mut(r)
                    .copy_from_slice(table.row_slice(idx as usize));
            }
        }
        self.push(value, Op::Gather(id, indices.to_vec()))
    }

    /// Gathers `indices` rows of an existing node (e.g. propagated
    /// embeddings in a graph neural network).
    pub fn gather_var(&mut self, src: Var, indices: &[u32]) -> Var {
        let _t = profile::fwd(OpKind::GatherVar);
        let cols = self.nodes[src.0].value.cols();
        let mut value = self.pool.zeros(indices.len(), cols);
        let table = &self.nodes[src.0].value;
        for (r, &idx) in indices.iter().enumerate() {
            value
                .row_slice_mut(r)
                .copy_from_slice(table.row_slice(idx as usize));
        }
        self.push(value, Op::GatherVar(src, indices.to_vec()))
    }

    // ---- arithmetic --------------------------------------------------------

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::MatMul);
        let (ar, _) = self.shape(a);
        let (_, bc) = self.shape(b);
        let mut value = self.pool.zeros(ar, bc);
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut value, kernel::threads());
        self.push(value, Op::MatMul(a, b))
    }

    /// `a * b^T`.
    pub fn matmul_t(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::MatMulT);
        let (ar, _) = self.shape(a);
        let (br, _) = self.shape(b);
        let mut value = self.pool.zeros(ar, br);
        self.nodes[a.0]
            .value
            .matmul_t_into(&self.nodes[b.0].value, &mut value, kernel::threads());
        self.push(value, Op::MatMulT(a, b))
    }

    /// `a * P` with parameter `p` used in place. Bit-equal to
    /// `matmul(a, param(p))`, but the weight never lands on the tape:
    /// no per-use copy, no extra node, and the backward sweep sends
    /// `dP = A^T G` straight into the [`GradStore`]. On the GRU/MLP
    /// hot path (thousands of tiny per-timestep matmuls) the removed
    /// `Param` traffic is a measurable share of the update step.
    pub fn matmul_param(&mut self, a: Var, p: ParamId) -> Var {
        let _t = profile::fwd(OpKind::MatMul);
        let (ar, _) = self.shape(a);
        let pm = self.params.get(p);
        let mut value = self.pool.zeros(ar, pm.cols());
        self.nodes[a.0]
            .value
            .matmul_into(pm, &mut value, kernel::threads());
        self.push(value, Op::MatMulParam(a, p))
    }

    /// `a * P^T` with parameter `p` used in place (fused like
    /// [`Graph::matmul_param`]; bit-equal to `matmul_t(a, param(p))`).
    pub fn matmul_t_param(&mut self, a: Var, p: ParamId) -> Var {
        let _t = profile::fwd(OpKind::MatMulT);
        let (ar, _) = self.shape(a);
        let pm = self.params.get(p);
        let mut value = self.pool.zeros(ar, pm.rows());
        self.nodes[a.0]
            .value
            .matmul_t_into(pm, &mut value, kernel::threads());
        self.push(value, Op::MatMulTParam(a, p))
    }

    /// `a + P` where `P` is a `1 x cols` parameter row broadcast over
    /// the rows of `a` (fused bias add; bit-equal to
    /// `add(a, param(p))`).
    pub fn add_row_param(&mut self, a: Var, p: ParamId) -> Var {
        let _t = profile::fwd(OpKind::Add);
        let (ar, ac) = self.shape(a);
        let pm = self.params.get(p);
        assert!(
            pm.rows() == 1 && pm.cols() == ac,
            "add_row_param broadcast mismatch: {ar}x{ac} + {}x{}",
            pm.rows(),
            pm.cols()
        );
        let mut m = self.pool.copy_of(&self.nodes[a.0].value);
        for r in 0..ar {
            for (x, &y) in m.row_slice_mut(r).iter_mut().zip(pm.data()) {
                *x += y;
            }
        }
        self.push(m, Op::AddRowParam(a, p))
    }

    /// Same-shape addition, or row-broadcast when `b` is `1 x cols`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::Add);
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        let value = if (ar, ac) == (br, bc) {
            let mut m = self.pool.copy_of(&self.nodes[a.0].value);
            m.axpy(1.0, &self.nodes[b.0].value);
            m
        } else {
            assert!(
                br == 1 && bc == ac,
                "add broadcast mismatch: {ar}x{ac} + {br}x{bc}"
            );
            let mut m = self.pool.copy_of(&self.nodes[a.0].value);
            let bvals = &self.nodes[b.0].value;
            for r in 0..ar {
                for (x, &y) in m.row_slice_mut(r).iter_mut().zip(bvals.data()) {
                    *x += y;
                }
            }
            m
        };
        self.push(value, Op::Add(a, b))
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::Sub);
        assert_eq!(self.shape(a), self.shape(b), "sub shape mismatch");
        let mut m = self.pool.copy_of(&self.nodes[a.0].value);
        m.axpy(-1.0, &self.nodes[b.0].value);
        self.push(m, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::Mul);
        assert_eq!(self.shape(a), self.shape(b), "mul shape mismatch");
        let (r, c) = self.shape(b);
        let value = self.pool.collect(
            r,
            c,
            self.nodes[a.0]
                .value
                .data()
                .iter()
                .zip(self.nodes[b.0].value.data())
                .map(|(&x, &y)| x * y),
        );
        self.push(value, Op::Mul(a, b))
    }

    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let _t = profile::fwd(OpKind::Scale);
        let value = self.mapped(a, |x| x * alpha);
        self.push(value, Op::Scale(a, alpha))
    }

    pub fn add_scalar(&mut self, a: Var, beta: f32) -> Var {
        let _t = profile::fwd(OpKind::AddScalar);
        let value = self.mapped(a, |x| x + beta);
        self.push(value, Op::AddScalar(a))
    }

    /// Pool-backed elementwise map of a node's value.
    fn mapped(&mut self, a: Var, f: impl Fn(f32) -> f32) -> Matrix {
        let (r, c) = self.shape(a);
        self.pool
            .collect(r, c, self.nodes[a.0].value.data().iter().map(|&x| f(x)))
    }

    // ---- activations -------------------------------------------------------

    pub fn relu(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::Relu);
        let value = self.mapped(a, |x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let _t = profile::fwd(OpKind::LeakyRelu);
        let value = self.mapped(a, |x| if x > 0.0 { x } else { slope * x });
        self.push(value, Op::LeakyRelu(a, slope))
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::Sigmoid);
        let value = self.mapped(a, stable_sigmoid);
        self.push(value, Op::Sigmoid(a))
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::Tanh);
        let value = self.mapped(a, f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Numerically-stable `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::Softplus);
        let value = self.mapped(a, stable_softplus);
        self.push(value, Op::Softplus(a))
    }

    // ---- structure ---------------------------------------------------------

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::ConcatCols);
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ar, br, "concat_cols row mismatch");
        let mut value = self.pool.zeros(ar, ac + bc);
        for r in 0..ar {
            value.row_slice_mut(r)[..ac].copy_from_slice(self.nodes[a.0].value.row_slice(r));
            value.row_slice_mut(r)[ac..].copy_from_slice(self.nodes[b.0].value.row_slice(r));
        }
        self.push(value, Op::ConcatCols(a, b))
    }

    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::ConcatRows);
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ac, bc, "concat_rows col mismatch");
        let mut data = self.pool.take((ar + br) * ac);
        data.extend_from_slice(self.nodes[a.0].value.data());
        data.extend_from_slice(self.nodes[b.0].value.data());
        self.push(Matrix::from_vec(ar + br, ac, data), Op::ConcatRows(a, b))
    }

    // ---- reductions & losses ----------------------------------------------

    /// `1 x 1` sum of all entries.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::SumAll);
        let s = self.nodes[a.0].value.sum();
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::SumAll(a))
    }

    /// `1 x 1` mean of all entries.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::MeanAll);
        let v = &self.nodes[a.0].value;
        let s = v.sum() / v.len() as f32;
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::MeanAll(a))
    }

    /// `1 x 1` sum of squared entries.
    pub fn sq_sum(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::SqSum);
        let s = self.nodes[a.0].value.sq_norm();
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::SqSum(a))
    }

    /// Row-wise log-softmax (stable).
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::LogSoftmaxRows);
        let mut out = self.pool.copy_of(&self.nodes[a.0].value);
        for r in 0..out.rows() {
            let row = out.row_slice_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
            for x in row {
                *x -= lse;
            }
        }
        self.push(out, Op::LogSoftmaxRows(a))
    }

    /// Picks one entry per row: `out[r, 0] = a[r, idx[r]]`.
    pub fn pick_per_row(&mut self, a: Var, indices: &[u32]) -> Var {
        let _t = profile::fwd(OpKind::PickPerRow);
        let v = &self.nodes[a.0].value;
        assert_eq!(v.rows(), indices.len(), "pick_per_row length mismatch");
        let it = indices
            .iter()
            .enumerate()
            .map(|(r, &c)| v.at(r, c as usize));
        let value = self.pool.collect(indices.len(), 1, it);
        self.push(value, Op::PickPerRow(a, indices.to_vec()))
    }

    /// `pick_per_row(log_softmax_rows(a), indices)` fused. Bit-equal
    /// to the two-op composition — the max/log-sum-exp expressions are
    /// identical — but only the picked `rows x 1` column is
    /// materialized instead of the full `rows x cols` log-prob matrix
    /// (which, for logits over the whole item catalog, is by far the
    /// largest tensor the PPO replay builds).
    pub fn log_softmax_pick(&mut self, a: Var, indices: &[u32]) -> Var {
        let _t = profile::fwd(OpKind::LogSoftmaxRows);
        let v = &self.nodes[a.0].value;
        assert_eq!(v.rows(), indices.len(), "log_softmax_pick length mismatch");
        let mut lse = Vec::with_capacity(v.rows());
        for r in 0..v.rows() {
            let row = v.row_slice(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            lse.push(max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln());
        }
        let it = indices
            .iter()
            .enumerate()
            .map(|(r, &c)| v.at(r, c as usize) - lse[r]);
        let value = self.pool.collect(indices.len(), 1, it);
        self.push(value, Op::LogSoftmaxPick(a, indices.to_vec(), lse))
    }

    /// `sparse * dense`; gradient flows only to the dense operand.
    pub fn spmm(&mut self, sparse: Arc<Csr>, dense: Var) -> Var {
        let _t = profile::fwd(OpKind::SpMM);
        let value = sparse.spmm(&self.nodes[dense.0].value);
        self.push(value, Op::SpMM(sparse, dense))
    }

    /// Mean binary cross-entropy with logits over entries where
    /// `mask != 0` (mask entries act as weights).
    pub fn bce_with_logits(&mut self, logits: Var, targets: Matrix, mask: Matrix) -> Var {
        let _t = profile::fwd(OpKind::BceWithLogits);
        let x = &self.nodes[logits.0].value;
        assert_eq!(x.shape(), targets.shape(), "bce target shape");
        assert_eq!(x.shape(), mask.shape(), "bce mask shape");
        let total_mask: f32 = mask.sum();
        let denom = if total_mask > 0.0 { total_mask } else { 1.0 };
        let mut loss = 0.0;
        for ((&xv, &yv), &mv) in x.data().iter().zip(targets.data()).zip(mask.data()) {
            if mv != 0.0 {
                // max(x,0) - x*y + ln(1 + e^{-|x|})
                loss += mv * (xv.max(0.0) - xv * yv + stable_softplus(-xv.abs()));
            }
        }
        let value = Matrix::from_vec(1, 1, vec![loss / denom]);
        self.push(
            value,
            Op::BceWithLogits {
                logits,
                targets,
                mask,
            },
        )
    }

    /// Mean squared error over entries where `mask != 0`.
    pub fn mse_masked(&mut self, pred: Var, targets: Matrix, mask: Matrix) -> Var {
        let _t = profile::fwd(OpKind::MseMasked);
        let x = &self.nodes[pred.0].value;
        assert_eq!(x.shape(), targets.shape(), "mse target shape");
        assert_eq!(x.shape(), mask.shape(), "mse mask shape");
        let total_mask: f32 = mask.sum();
        let denom = if total_mask > 0.0 { total_mask } else { 1.0 };
        let mut loss = 0.0;
        for ((&xv, &yv), &mv) in x.data().iter().zip(targets.data()).zip(mask.data()) {
            if mv != 0.0 {
                let d = xv - yv;
                loss += mv * d * d;
            }
        }
        let value = Matrix::from_vec(1, 1, vec![loss / denom]);
        self.push(
            value,
            Op::MseMasked {
                pred,
                targets,
                mask,
            },
        )
    }

    // ---- backward ----------------------------------------------------------

    /// Order-of-magnitude FLOP count for one backward execution of
    /// node `i` (same spirit as [`Graph::flop_estimate`]): matmul-family
    /// ops cost two products (2x forward), elementwise VJPs cost a few
    /// ops per input element, copies and scatters count zero.
    fn bwd_flop_estimate(&self, i: usize) -> u64 {
        let out = self.nodes[i].value.len() as u64;
        let in_elems = |v: &Var| {
            let (r, c) = self.shape(*v);
            (r * c) as u64
        };
        match &self.nodes[i].op {
            Op::Input | Op::Param(..) | Op::Gather(..) | Op::GatherVar(..) => 0,
            Op::ConcatCols(..) | Op::ConcatRows(..) => 0,
            // dA and dB are each a full product over the same three
            // dims as the forward: twice the forward FLOPs.
            Op::MatMul(a, _)
            | Op::MatMulT(a, _)
            | Op::MatMulParam(a, _)
            | Op::MatMulTParam(a, _) => 4 * self.shape(*a).1 as u64 * out,
            Op::Add(..) | Op::Sub(..) | Op::Scale(..) | Op::AddScalar(..) => out,
            Op::AddRowParam(..) => out,
            Op::Mul(..) => 2 * out,
            Op::Relu(..) | Op::LeakyRelu(..) => out,
            Op::Sigmoid(..) | Op::Tanh(..) => 3 * out,
            Op::Softplus(..) => 4 * out,
            Op::SumAll(a) | Op::MeanAll(a) => in_elems(a),
            Op::SqSum(a) => 2 * in_elems(a),
            // exp + multiply + subtract per input element (+ row sums).
            Op::LogSoftmaxRows(a) | Op::LogSoftmaxPick(a, ..) => 4 * in_elems(a),
            // Sparse row-select scatter: one add per picked entry.
            Op::PickPerRow(..) => 2 * out,
            Op::SpMM(sparse, _) => 2 * sparse.nnz() as u64 * self.nodes[i].value.cols() as u64,
            Op::BceWithLogits { logits, .. } => 5 * in_elems(logits),
            Op::MseMasked { pred, .. } => 3 * in_elems(pred),
        }
    }

    /// Reverse sweep from the scalar `root`, accumulating parameter
    /// gradients into `grads`.
    ///
    /// # Panics
    /// Panics if `root` is not `1 x 1`.
    pub fn backward(&mut self, root: Var, grads: &mut GradStore) {
        assert_eq!(self.shape(root), (1, 1), "backward root must be scalar");
        self.backward_weighted(root, 1.0, grads);
    }

    /// Like [`Graph::backward`] but seeds the root gradient with
    /// `weight` (used for per-example loss weighting such as PPO
    /// advantages).
    ///
    /// Adjoint buffers come from (and return to) this graph's pool, so
    /// repeated sweeps over arena-built graphs run allocation-free in
    /// the steady state.
    pub fn backward_weighted(&mut self, root: Var, weight: f32, grads: &mut GradStore) {
        assert_eq!(self.shape(root), (1, 1), "backward root must be scalar");
        // Detach the scratch from `self` so the sweep can hold `&self`
        // node borrows alongside mutable pool/adjoint state.
        let mut adj = std::mem::take(&mut self.adj);
        let mut pool = std::mem::take(&mut self.pool);
        adj.clear();
        adj.resize_with(self.nodes.len(), || None);
        adj[root.0] = Some(Adjoint::Dense(pool.full(1, 1, weight)));
        let threads = kernel::threads();
        // Lazily transposed parameter matrices, shared by every
        // `MatMulParam` node in this sweep: recurrent weights are
        // multiplied `T x gates` times per episode, and re-transposing
        // the same constant matrix each time was a visible slice of the
        // backward. Params are immutable for the whole sweep, so one
        // transpose each is exact.
        let mut tposed: Vec<Option<Vec<f32>>> = Vec::new();
        tposed.resize_with(self.params.len(), || None);

        for i in (0..=root.0).rev() {
            let Some(g) = adj[i].take() else { continue };
            let kind = self.nodes[i].op.kind();
            let _t = profile::bwd(kind);
            if profile::enabled() {
                profile::record_bwd_dims(kind, self.bwd_flop_estimate(i));
            }
            // Sparse-adjoint fast paths first; everything else works on
            // a dense gradient.
            let g: Matrix = match (&self.nodes[i].op, g) {
                (Op::PickPerRow(a, indices), g) => {
                    // The upstream gradient is `rows x 1`; forwarding it
                    // as a RowSelect avoids zero-filling (and later
                    // scanning) a dense `rows x cols` matrix.
                    let (rows, cols) = self.shape(*a);
                    let val = g.into_dense(&mut pool).into_vec();
                    accumulate(
                        &mut adj,
                        *a,
                        Adjoint::RowSelect {
                            rows,
                            cols,
                            idx: indices.clone(),
                            val,
                        },
                        &mut pool,
                    );
                    continue;
                }
                (Op::LogSoftmaxRows(a), Adjoint::RowSelect { idx, val, .. }) => {
                    // dx = g - softmax(x) * rowsum(g); with one entry
                    // per row, rowsum(g[r]) is just val[r], so the whole
                    // VJP is one write pass plus a point update.
                    let src = *a;
                    let y = &self.nodes[i].value; // log-probs
                    let (rows, cols) = y.shape();
                    let mut buf = pool.take(rows * cols);
                    for (r, &gv) in val.iter().enumerate() {
                        buf.extend(y.row_slice(r).iter().map(|&lp| -(lp.exp() * gv)));
                    }
                    let mut da = Matrix::from_vec(rows, cols, buf);
                    for (r, (&c, &gv)) in idx.iter().zip(&val).enumerate() {
                        let cur = da.at(r, c as usize);
                        da.set(r, c as usize, cur + gv);
                    }
                    pool.put(val);
                    accumulate(&mut adj, src, Adjoint::Dense(da), &mut pool);
                    continue;
                }
                (_, g) => g.into_dense(&mut pool),
            };
            match &self.nodes[i].op {
                Op::Input => pool.recycle(g),
                Op::Param(id) => {
                    grads.get_mut(*id).axpy(1.0, &g);
                    pool.recycle(g);
                }
                Op::Gather(id, indices) => {
                    // Consecutive indices scatter-add as one block pass
                    // (same element order as the row loop, so the same
                    // bits land either way).
                    let table = grads.get_mut(*id);
                    if let Some(&start) = indices.first().filter(|_| is_consecutive(indices)) {
                        let cols = g.cols();
                        let start = start as usize * cols;
                        let dst = &mut table.data_mut()[start..start + indices.len() * cols];
                        for (d, &s) in dst.iter_mut().zip(g.data()) {
                            *d += s;
                        }
                    } else {
                        for (r, &idx) in indices.iter().enumerate() {
                            let dst = table.row_slice_mut(idx as usize);
                            for (d, &s) in dst.iter_mut().zip(g.row_slice(r)) {
                                *d += s;
                            }
                        }
                    }
                    pool.recycle(g);
                }
                Op::GatherVar(src, indices) => {
                    let (sr, sc) = self.shape(*src);
                    let mut ds = pool.zeros(sr, sc);
                    for (r, &idx) in indices.iter().enumerate() {
                        let dst = ds.row_slice_mut(idx as usize);
                        for (d, &s) in dst.iter_mut().zip(g.row_slice(r)) {
                            *d += s;
                        }
                    }
                    accumulate(&mut adj, *src, Adjoint::Dense(ds), &mut pool);
                    pool.recycle(g);
                }
                Op::MatMul(a, b) => {
                    // dA = G * B^T ; dB = A^T * G
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let mut da = pool.zeros(g.rows(), bv.rows());
                    g.matmul_t_into(bv, &mut da, threads);
                    let mut db = pool.zeros(av.cols(), g.cols());
                    av.t_matmul_into(&g, &mut db, threads);
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    accumulate(&mut adj, *b, Adjoint::Dense(db), &mut pool);
                    pool.recycle(g);
                }
                Op::MatMulT(a, b) => {
                    // y = A * B^T: dA = G * B ; dB = G^T * A
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let mut da = pool.zeros(g.rows(), bv.cols());
                    g.matmul_into(bv, &mut da, threads);
                    let mut db = pool.zeros(g.cols(), av.cols());
                    g.t_matmul_into(av, &mut db, threads);
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    accumulate(&mut adj, *b, Adjoint::Dense(db), &mut pool);
                    pool.recycle(g);
                }
                Op::MatMulParam(a, pid) => {
                    // Same products as the MatMul arm with B = P, but
                    // dP skips the tape and lands in the grad store
                    // (bit-identical: the param node it replaces had
                    // exactly this one consumer). dA = G * P^T runs
                    // against the sweep-cached transpose — the same
                    // materialize-then-multiply `matmul_t` performs,
                    // minus the per-call transpose.
                    let av = &self.nodes[a.0].value;
                    let pv = self.params.get(*pid);
                    let pt = tposed[pid.0].get_or_insert_with(|| {
                        let mut buf = pool.take(pv.len());
                        kernel::transpose_into(pv.data(), pv.rows(), pv.cols(), &mut buf);
                        buf
                    });
                    let mut da = pool.zeros(g.rows(), pv.rows());
                    kernel::matmul(
                        g.data(),
                        g.rows(),
                        g.cols(),
                        pt,
                        pv.rows(),
                        da.data_mut(),
                        threads,
                    );
                    let mut dp = pool.zeros(av.cols(), g.cols());
                    av.t_matmul_into(&g, &mut dp, threads);
                    grads.get_mut(*pid).axpy(1.0, &dp);
                    pool.recycle(dp);
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::MatMulTParam(a, pid) => {
                    // y = A * P^T: dA = G * P ; dP = G^T * A
                    let av = &self.nodes[a.0].value;
                    let pv = self.params.get(*pid);
                    let mut da = pool.zeros(g.rows(), pv.cols());
                    g.matmul_into(pv, &mut da, threads);
                    let mut dp = pool.zeros(g.cols(), av.cols());
                    g.t_matmul_into(av, &mut dp, threads);
                    grads.get_mut(*pid).axpy(1.0, &dp);
                    pool.recycle(dp);
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::AddRowParam(a, pid) => {
                    // Mirrors the two Add paths exactly: a 1-row
                    // gradient is added as-is (preserving `-0.0` bits a
                    // column-sum would launder), taller ones column-sum.
                    if g.rows() == 1 {
                        grads.get_mut(*pid).axpy(1.0, &g);
                    } else {
                        let mut db = pool.zeros(1, g.cols());
                        for r in 0..g.rows() {
                            for (d, &s) in db.data_mut().iter_mut().zip(g.row_slice(r)) {
                                *d += s;
                            }
                        }
                        grads.get_mut(*pid).axpy(1.0, &db);
                        pool.recycle(db);
                    }
                    accumulate(&mut adj, *a, Adjoint::Dense(g), &mut pool);
                }
                Op::Add(a, b) => {
                    let (br, bc) = self.shape(*b);
                    if (br, bc) == g.shape() {
                        let db = pool.copy_of(&g);
                        accumulate(&mut adj, *b, Adjoint::Dense(db), &mut pool);
                    } else {
                        // b was a broadcast row: column-sum the gradient.
                        let mut db = pool.zeros(1, bc);
                        for r in 0..g.rows() {
                            for (d, &s) in db.data_mut().iter_mut().zip(g.row_slice(r)) {
                                *d += s;
                            }
                        }
                        accumulate(&mut adj, *b, Adjoint::Dense(db), &mut pool);
                    }
                    accumulate(&mut adj, *a, Adjoint::Dense(g), &mut pool);
                }
                Op::Sub(a, b) => {
                    let mut db = pool.copy_of(&g);
                    db.scale_inplace(-1.0);
                    accumulate(&mut adj, *b, Adjoint::Dense(db), &mut pool);
                    accumulate(&mut adj, *a, Adjoint::Dense(g), &mut pool);
                }
                Op::Mul(a, b) => {
                    let (r, c) = g.shape();
                    let da = pool.collect(
                        r,
                        c,
                        g.data()
                            .iter()
                            .zip(self.nodes[b.0].value.data())
                            .map(|(&gv, &bv)| gv * bv),
                    );
                    let db = pool.collect(
                        r,
                        c,
                        g.data()
                            .iter()
                            .zip(self.nodes[a.0].value.data())
                            .map(|(&gv, &av)| gv * av),
                    );
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    accumulate(&mut adj, *b, Adjoint::Dense(db), &mut pool);
                    pool.recycle(g);
                }
                Op::Scale(a, alpha) => {
                    let mut da = g;
                    da.scale_inplace(*alpha);
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                }
                Op::AddScalar(a) => {
                    accumulate(&mut adj, *a, Adjoint::Dense(g), &mut pool);
                }
                Op::Relu(a) => {
                    let (r, c) = g.shape();
                    let da = pool.collect(
                        r,
                        c,
                        g.data()
                            .iter()
                            .zip(self.nodes[a.0].value.data())
                            .map(|(&gv, &xv)| if xv > 0.0 { gv } else { 0.0 }),
                    );
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::LeakyRelu(a, slope) => {
                    let (r, c) = g.shape();
                    let da = pool.collect(
                        r,
                        c,
                        g.data()
                            .iter()
                            .zip(self.nodes[a.0].value.data())
                            .map(|(&gv, &xv)| if xv > 0.0 { gv } else { slope * gv }),
                    );
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::Sigmoid(a) => {
                    let (r, c) = g.shape();
                    let da = pool.collect(
                        r,
                        c,
                        g.data()
                            .iter()
                            .zip(self.nodes[i].value.data())
                            .map(|(&gv, &yv)| gv * yv * (1.0 - yv)),
                    );
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::Tanh(a) => {
                    let (r, c) = g.shape();
                    let da = pool.collect(
                        r,
                        c,
                        g.data()
                            .iter()
                            .zip(self.nodes[i].value.data())
                            .map(|(&gv, &yv)| gv * (1.0 - yv * yv)),
                    );
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::Softplus(a) => {
                    let (r, c) = g.shape();
                    let da = pool.collect(
                        r,
                        c,
                        g.data()
                            .iter()
                            .zip(self.nodes[a.0].value.data())
                            .map(|(&gv, &xv)| gv * stable_sigmoid(xv)),
                    );
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::ConcatCols(a, b) => {
                    let (ar, ac) = self.shape(*a);
                    let (_, bc) = self.shape(*b);
                    let mut da = pool.zeros(ar, ac);
                    let mut db = pool.zeros(ar, bc);
                    for r in 0..ar {
                        da.row_slice_mut(r).copy_from_slice(&g.row_slice(r)[..ac]);
                        db.row_slice_mut(r).copy_from_slice(&g.row_slice(r)[ac..]);
                    }
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    accumulate(&mut adj, *b, Adjoint::Dense(db), &mut pool);
                    pool.recycle(g);
                }
                Op::ConcatRows(a, b) => {
                    let (ar, ac) = self.shape(*a);
                    let (br, _) = self.shape(*b);
                    let mut abuf = pool.take(ar * ac);
                    abuf.extend_from_slice(&g.data()[..ar * ac]);
                    let mut bbuf = pool.take(br * ac);
                    bbuf.extend_from_slice(&g.data()[ar * ac..]);
                    accumulate(
                        &mut adj,
                        *a,
                        Adjoint::Dense(Matrix::from_vec(ar, ac, abuf)),
                        &mut pool,
                    );
                    accumulate(
                        &mut adj,
                        *b,
                        Adjoint::Dense(Matrix::from_vec(br, ac, bbuf)),
                        &mut pool,
                    );
                    pool.recycle(g);
                }
                Op::SumAll(a) => {
                    let (ar, ac) = self.shape(*a);
                    let da = pool.full(ar, ac, g.at(0, 0));
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::MeanAll(a) => {
                    let (ar, ac) = self.shape(*a);
                    let scale = g.at(0, 0) / (ar * ac) as f32;
                    let da = pool.full(ar, ac, scale);
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::SqSum(a) => {
                    let mut da = pool.copy_of(&self.nodes[a.0].value);
                    da.scale_inplace(2.0 * g.at(0, 0));
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::LogSoftmaxRows(a) => {
                    // dx = g - softmax(x) * rowsum(g)
                    let y = &self.nodes[i].value; // log-probs
                    let mut da = pool.copy_of(&g);
                    for r in 0..da.rows() {
                        let gsum: f32 = g.row_slice(r).iter().sum();
                        for (d, &lp) in da.row_slice_mut(r).iter_mut().zip(y.row_slice(r)) {
                            *d -= lp.exp() * gsum;
                        }
                    }
                    accumulate(&mut adj, *a, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::LogSoftmaxPick(a, idx, lse) => {
                    // Mirrors the RowSelect VJP of the unfused
                    // PickPerRow -> LogSoftmaxRows chain bit-for-bit:
                    // `x - lse` reproduces the stored log-prob bits, so
                    // `-(lp.exp() * gv)` and the picked-entry add are
                    // identical expressions over identical inputs.
                    let src = *a;
                    let xv = &self.nodes[a.0].value;
                    let (rows, cols) = xv.shape();
                    let mut buf = pool.take(rows * cols);
                    for (r, &ls) in lse.iter().enumerate() {
                        let gv = g.at(r, 0);
                        buf.extend(xv.row_slice(r).iter().map(|&x| -((x - ls).exp() * gv)));
                    }
                    let mut da = Matrix::from_vec(rows, cols, buf);
                    for (r, &c) in idx.iter().enumerate() {
                        let gv = g.at(r, 0);
                        let cur = da.at(r, c as usize);
                        da.set(r, c as usize, cur + gv);
                    }
                    accumulate(&mut adj, src, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                // Handled by the RowSelect fast path above.
                Op::PickPerRow(..) => unreachable!("PickPerRow backward is sparse"),
                Op::SpMM(sparse, dense) => {
                    let dd = sparse.t_spmm(&g);
                    accumulate(&mut adj, *dense, Adjoint::Dense(dd), &mut pool);
                    pool.recycle(g);
                }
                Op::BceWithLogits {
                    logits,
                    targets,
                    mask,
                } => {
                    let x = &self.nodes[logits.0].value;
                    let total_mask: f32 = mask.sum();
                    let denom = if total_mask > 0.0 { total_mask } else { 1.0 };
                    let scale = g.at(0, 0) / denom;
                    let da = pool.collect(
                        x.rows(),
                        x.cols(),
                        x.data().iter().zip(targets.data()).zip(mask.data()).map(
                            |((&xv, &yv), &mv)| {
                                if mv != 0.0 {
                                    scale * mv * (stable_sigmoid(xv) - yv)
                                } else {
                                    0.0
                                }
                            },
                        ),
                    );
                    accumulate(&mut adj, *logits, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
                Op::MseMasked {
                    pred,
                    targets,
                    mask,
                } => {
                    let x = &self.nodes[pred.0].value;
                    let total_mask: f32 = mask.sum();
                    let denom = if total_mask > 0.0 { total_mask } else { 1.0 };
                    let scale = 2.0 * g.at(0, 0) / denom;
                    let da = pool.collect(
                        x.rows(),
                        x.cols(),
                        x.data().iter().zip(targets.data()).zip(mask.data()).map(
                            |((&xv, &yv), &mv)| {
                                if mv != 0.0 {
                                    scale * mv * (xv - yv)
                                } else {
                                    0.0
                                }
                            },
                        ),
                    );
                    accumulate(&mut adj, *pred, Adjoint::Dense(da), &mut pool);
                    pool.recycle(g);
                }
            }
        }
        // Park the transposed-weight scratch for the next sweep.
        for buf in tposed.into_iter().flatten() {
            pool.put(buf);
        }
        // All slots are `None` again; keep both for their capacity.
        self.adj = adj;
        self.pool = pool;
    }
}

/// Folds `g` into node `v`'s pending adjoint. First gradient in wins
/// the slot as-is (sparse stays sparse); a second densifies and sums —
/// the dense accumulation order matches the pre-pool implementation
/// (existing += incoming), so results are bit-identical.
fn accumulate(adj: &mut [Option<Adjoint>], v: Var, g: Adjoint, pool: &mut BufferPool) {
    let merged = match (adj[v.0].take(), g) {
        (None, g) => g,
        (Some(cur), g) => {
            let mut dense = cur.into_dense(pool);
            add_adjoint(&mut dense, g, pool);
            Adjoint::Dense(dense)
        }
    };
    adj[v.0] = Some(merged);
}

fn add_adjoint(dense: &mut Matrix, g: Adjoint, pool: &mut BufferPool) {
    match g {
        Adjoint::Dense(m) => {
            dense.axpy(1.0, &m);
            pool.recycle(m);
        }
        Adjoint::RowSelect { idx, val, .. } => {
            for (r, (&c, &v)) in idx.iter().zip(&val).enumerate() {
                let cur = dense.at(r, c as usize);
                dense.set(r, c as usize, cur + v);
            }
            pool.put(val);
        }
    }
}

/// Numerically stable logistic function.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `ln(1 + e^x)`.
#[inline]
pub fn stable_softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}
