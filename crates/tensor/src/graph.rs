//! Tape-based reverse-mode automatic differentiation over dense
//! matrices.
//!
//! A [`Graph`] is rebuilt for every forward pass (define-by-run). Every
//! operation evaluates eagerly and records enough information on the
//! tape to compute vector-Jacobian products in a single reverse sweep.
//! Gradients of [`crate::ParamSet`] parameters accumulate into a
//! [`crate::GradStore`], so multiple `backward` calls (e.g. one per
//! sampled trajectory) naturally sum their gradients.
//!
//! Only the operations needed by the PoisonRec reproduction are
//! implemented, each verified against central finite differences in the
//! test suite.

use std::sync::Arc;

use crate::matrix::Matrix;
use crate::params::{GradStore, ParamId, ParamSet};
use crate::profile::{self, OpKind};
use crate::sparse::Csr;

/// Handle to a node on the tape.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// External constant input; no gradient propagates past it.
    Input,
    /// A full parameter matrix.
    Param(ParamId),
    /// Row-gather from a parameter (embedding lookup).
    Gather(ParamId, Vec<u32>),
    /// Row-gather from another tape node.
    GatherVar(Var, Vec<u32>),
    MatMul(Var, Var),
    /// `a * b^T` — logits against an embedding table.
    MatMulT(Var, Var),
    /// Same-shape addition, or `b` is a `1 x cols` row broadcast over
    /// the rows of `a`.
    Add(Var, Var),
    Sub(Var, Var),
    /// Elementwise product (same shapes).
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Sigmoid(Var),
    Tanh(Var),
    Softplus(Var),
    ConcatCols(Var, Var),
    ConcatRows(Var, Var),
    SumAll(Var),
    MeanAll(Var),
    /// Row-wise log-softmax.
    LogSoftmaxRows(Var),
    /// Picks `x[r, idx[r]]` for every row into an `rows x 1` column.
    PickPerRow(Var, Vec<u32>),
    /// `sparse * dense`; the sparse operand is constant.
    SpMM(Arc<Csr>, Var),
    /// Mean binary cross-entropy with logits, weighted by `mask`.
    BceWithLogits {
        logits: Var,
        targets: Matrix,
        mask: Matrix,
    },
    /// Mean squared error restricted to `mask` entries.
    MseMasked {
        pred: Var,
        targets: Matrix,
        mask: Matrix,
    },
    /// Sum of squared entries (L2 regularizer building block).
    SqSum(Var),
}

impl Op {
    /// The profiler aggregation key. Exhaustive on purpose: adding an
    /// `Op` variant without classifying it is a compile error.
    fn kind(&self) -> OpKind {
        match self {
            Op::Input => OpKind::Input,
            Op::Param(..) => OpKind::Param,
            Op::Gather(..) => OpKind::Gather,
            Op::GatherVar(..) => OpKind::GatherVar,
            Op::MatMul(..) => OpKind::MatMul,
            Op::MatMulT(..) => OpKind::MatMulT,
            Op::Add(..) => OpKind::Add,
            Op::Sub(..) => OpKind::Sub,
            Op::Mul(..) => OpKind::Mul,
            Op::Scale(..) => OpKind::Scale,
            Op::AddScalar(..) => OpKind::AddScalar,
            Op::Relu(..) => OpKind::Relu,
            Op::LeakyRelu(..) => OpKind::LeakyRelu,
            Op::Sigmoid(..) => OpKind::Sigmoid,
            Op::Tanh(..) => OpKind::Tanh,
            Op::Softplus(..) => OpKind::Softplus,
            Op::ConcatCols(..) => OpKind::ConcatCols,
            Op::ConcatRows(..) => OpKind::ConcatRows,
            Op::SumAll(..) => OpKind::SumAll,
            Op::MeanAll(..) => OpKind::MeanAll,
            Op::LogSoftmaxRows(..) => OpKind::LogSoftmaxRows,
            Op::PickPerRow(..) => OpKind::PickPerRow,
            Op::SpMM(..) => OpKind::SpMM,
            Op::BceWithLogits { .. } => OpKind::BceWithLogits,
            Op::MseMasked { .. } => OpKind::MseMasked,
            Op::SqSum(..) => OpKind::SqSum,
        }
    }
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Define-by-run autodiff tape borrowing a [`ParamSet`].
pub struct Graph<'p> {
    params: &'p ParamSet,
    nodes: Vec<Node>,
}

impl<'p> Graph<'p> {
    pub fn new(params: &'p ParamSet) -> Self {
        Self {
            params,
            nodes: Vec::with_capacity(64),
        }
    }

    /// Number of tape nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        if profile::enabled() {
            profile::record_dims(
                op.kind(),
                value.len() as u64,
                self.flop_estimate(&op, &value),
            );
        }
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// Order-of-magnitude FLOP count for one forward execution of
    /// `op`, from the operand shapes. Copies (gathers, concats, picks)
    /// count zero; transcendental activations count a flat 4 per
    /// element. Good enough to rank ops and compute achieved-FLOP
    /// rates in `trace_report` — not a cycle-accurate model.
    fn flop_estimate(&self, op: &Op, value: &Matrix) -> u64 {
        let out = value.len() as u64;
        let in_elems = |v: &Var| {
            let (r, c) = self.shape(*v);
            (r * c) as u64
        };
        match op {
            Op::Input | Op::Param(..) | Op::Gather(..) | Op::GatherVar(..) => 0,
            Op::ConcatCols(..) | Op::ConcatRows(..) | Op::PickPerRow(..) => 0,
            // m×k · k×n: one multiply + one add per output per k
            // (for MatMulT the shared dim is also `a`'s cols).
            Op::MatMul(a, _) | Op::MatMulT(a, _) => 2 * self.shape(*a).1 as u64 * out,
            Op::Add(..) | Op::Sub(..) | Op::Mul(..) | Op::Scale(..) | Op::AddScalar(..) => out,
            Op::Relu(..) | Op::LeakyRelu(..) => out,
            Op::Sigmoid(..) | Op::Tanh(..) | Op::Softplus(..) => 4 * out,
            Op::SumAll(a) | Op::MeanAll(a) => in_elems(a),
            Op::SqSum(a) => 2 * in_elems(a),
            // exp + subtract + max/sum passes per element.
            Op::LogSoftmaxRows(a) => 5 * in_elems(a),
            Op::SpMM(sparse, _) => 2 * sparse.nnz() as u64 * value.cols() as u64,
            Op::BceWithLogits { logits, .. } => 6 * in_elems(logits),
            Op::MseMasked { pred, .. } => 3 * in_elems(pred),
        }
    }

    // ---- leaf constructors -------------------------------------------------

    /// Registers an external constant.
    pub fn input(&mut self, value: Matrix) -> Var {
        let _t = profile::fwd(OpKind::Input);
        self.push(value, Op::Input)
    }

    /// Brings a whole parameter matrix onto the tape.
    pub fn param(&mut self, id: ParamId) -> Var {
        let _t = profile::fwd(OpKind::Param);
        let value = self.params.get(id).clone();
        self.push(value, Op::Param(id))
    }

    /// Embedding lookup: gathers `indices` rows of parameter `id`.
    pub fn gather(&mut self, id: ParamId, indices: &[u32]) -> Var {
        let _t = profile::fwd(OpKind::Gather);
        let table = self.params.get(id);
        let cols = table.cols();
        let mut value = Matrix::zeros(indices.len(), cols);
        for (r, &idx) in indices.iter().enumerate() {
            value
                .row_slice_mut(r)
                .copy_from_slice(table.row_slice(idx as usize));
        }
        self.push(value, Op::Gather(id, indices.to_vec()))
    }

    /// Gathers `indices` rows of an existing node (e.g. propagated
    /// embeddings in a graph neural network).
    pub fn gather_var(&mut self, src: Var, indices: &[u32]) -> Var {
        let _t = profile::fwd(OpKind::GatherVar);
        let table = &self.nodes[src.0].value;
        let cols = table.cols();
        let mut value = Matrix::zeros(indices.len(), cols);
        for (r, &idx) in indices.iter().enumerate() {
            value
                .row_slice_mut(r)
                .copy_from_slice(table.row_slice(idx as usize));
        }
        self.push(value, Op::GatherVar(src, indices.to_vec()))
    }

    // ---- arithmetic --------------------------------------------------------

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::MatMul);
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, Op::MatMul(a, b))
    }

    /// `a * b^T`.
    pub fn matmul_t(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::MatMulT);
        let value = self.nodes[a.0].value.matmul_t(&self.nodes[b.0].value);
        self.push(value, Op::MatMulT(a, b))
    }

    /// Same-shape addition, or row-broadcast when `b` is `1 x cols`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::Add);
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        let value = if (ar, ac) == (br, bc) {
            let mut m = self.nodes[a.0].value.clone();
            m.axpy(1.0, &self.nodes[b.0].value);
            m
        } else {
            assert!(
                br == 1 && bc == ac,
                "add broadcast mismatch: {ar}x{ac} + {br}x{bc}"
            );
            let bvals = self.nodes[b.0].value.clone();
            let mut m = self.nodes[a.0].value.clone();
            for r in 0..ar {
                for (x, &y) in m.row_slice_mut(r).iter_mut().zip(bvals.data()) {
                    *x += y;
                }
            }
            m
        };
        self.push(value, Op::Add(a, b))
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::Sub);
        assert_eq!(self.shape(a), self.shape(b), "sub shape mismatch");
        let mut m = self.nodes[a.0].value.clone();
        m.axpy(-1.0, &self.nodes[b.0].value);
        self.push(m, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::Mul);
        assert_eq!(self.shape(a), self.shape(b), "mul shape mismatch");
        let bv = &self.nodes[b.0].value;
        let value = Matrix::from_vec(
            bv.rows(),
            bv.cols(),
            self.nodes[a.0]
                .value
                .data()
                .iter()
                .zip(bv.data())
                .map(|(&x, &y)| x * y)
                .collect(),
        );
        self.push(value, Op::Mul(a, b))
    }

    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let _t = profile::fwd(OpKind::Scale);
        let value = self.nodes[a.0].value.map(|x| x * alpha);
        self.push(value, Op::Scale(a, alpha))
    }

    pub fn add_scalar(&mut self, a: Var, beta: f32) -> Var {
        let _t = profile::fwd(OpKind::AddScalar);
        let value = self.nodes[a.0].value.map(|x| x + beta);
        self.push(value, Op::AddScalar(a))
    }

    // ---- activations -------------------------------------------------------

    pub fn relu(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::Relu);
        let value = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let _t = profile::fwd(OpKind::LeakyRelu);
        let value = self.nodes[a.0]
            .value
            .map(|x| if x > 0.0 { x } else { slope * x });
        self.push(value, Op::LeakyRelu(a, slope))
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::Sigmoid);
        let value = self.nodes[a.0].value.map(stable_sigmoid);
        self.push(value, Op::Sigmoid(a))
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::Tanh);
        let value = self.nodes[a.0].value.map(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Numerically-stable `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::Softplus);
        let value = self.nodes[a.0].value.map(stable_softplus);
        self.push(value, Op::Softplus(a))
    }

    // ---- structure ---------------------------------------------------------

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::ConcatCols);
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ar, br, "concat_cols row mismatch");
        let mut value = Matrix::zeros(ar, ac + bc);
        for r in 0..ar {
            value.row_slice_mut(r)[..ac].copy_from_slice(self.nodes[a.0].value.row_slice(r));
            value.row_slice_mut(r)[ac..].copy_from_slice(self.nodes[b.0].value.row_slice(r));
        }
        self.push(value, Op::ConcatCols(a, b))
    }

    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::fwd(OpKind::ConcatRows);
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ac, bc, "concat_rows col mismatch");
        let mut data = Vec::with_capacity((ar + br) * ac);
        data.extend_from_slice(self.nodes[a.0].value.data());
        data.extend_from_slice(self.nodes[b.0].value.data());
        self.push(Matrix::from_vec(ar + br, ac, data), Op::ConcatRows(a, b))
    }

    // ---- reductions & losses ----------------------------------------------

    /// `1 x 1` sum of all entries.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::SumAll);
        let s = self.nodes[a.0].value.sum();
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::SumAll(a))
    }

    /// `1 x 1` mean of all entries.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::MeanAll);
        let v = &self.nodes[a.0].value;
        let s = v.sum() / v.len() as f32;
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::MeanAll(a))
    }

    /// `1 x 1` sum of squared entries.
    pub fn sq_sum(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::SqSum);
        let s = self.nodes[a.0].value.sq_norm();
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::SqSum(a))
    }

    /// Row-wise log-softmax (stable).
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let _t = profile::fwd(OpKind::LogSoftmaxRows);
        let v = &self.nodes[a.0].value;
        let mut out = v.clone();
        for r in 0..out.rows() {
            let row = out.row_slice_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
            for x in row {
                *x -= lse;
            }
        }
        self.push(out, Op::LogSoftmaxRows(a))
    }

    /// Picks one entry per row: `out[r, 0] = a[r, idx[r]]`.
    pub fn pick_per_row(&mut self, a: Var, indices: &[u32]) -> Var {
        let _t = profile::fwd(OpKind::PickPerRow);
        let v = &self.nodes[a.0].value;
        assert_eq!(v.rows(), indices.len(), "pick_per_row length mismatch");
        let data = indices
            .iter()
            .enumerate()
            .map(|(r, &c)| v.at(r, c as usize))
            .collect();
        self.push(
            Matrix::from_vec(indices.len(), 1, data),
            Op::PickPerRow(a, indices.to_vec()),
        )
    }

    /// `sparse * dense`; gradient flows only to the dense operand.
    pub fn spmm(&mut self, sparse: Arc<Csr>, dense: Var) -> Var {
        let _t = profile::fwd(OpKind::SpMM);
        let value = sparse.spmm(&self.nodes[dense.0].value);
        self.push(value, Op::SpMM(sparse, dense))
    }

    /// Mean binary cross-entropy with logits over entries where
    /// `mask != 0` (mask entries act as weights).
    pub fn bce_with_logits(&mut self, logits: Var, targets: Matrix, mask: Matrix) -> Var {
        let _t = profile::fwd(OpKind::BceWithLogits);
        let x = &self.nodes[logits.0].value;
        assert_eq!(x.shape(), targets.shape(), "bce target shape");
        assert_eq!(x.shape(), mask.shape(), "bce mask shape");
        let total_mask: f32 = mask.sum();
        let denom = if total_mask > 0.0 { total_mask } else { 1.0 };
        let mut loss = 0.0;
        for ((&xv, &yv), &mv) in x.data().iter().zip(targets.data()).zip(mask.data()) {
            if mv != 0.0 {
                // max(x,0) - x*y + ln(1 + e^{-|x|})
                loss += mv * (xv.max(0.0) - xv * yv + stable_softplus(-xv.abs()));
            }
        }
        let value = Matrix::from_vec(1, 1, vec![loss / denom]);
        self.push(
            value,
            Op::BceWithLogits {
                logits,
                targets,
                mask,
            },
        )
    }

    /// Mean squared error over entries where `mask != 0`.
    pub fn mse_masked(&mut self, pred: Var, targets: Matrix, mask: Matrix) -> Var {
        let _t = profile::fwd(OpKind::MseMasked);
        let x = &self.nodes[pred.0].value;
        assert_eq!(x.shape(), targets.shape(), "mse target shape");
        assert_eq!(x.shape(), mask.shape(), "mse mask shape");
        let total_mask: f32 = mask.sum();
        let denom = if total_mask > 0.0 { total_mask } else { 1.0 };
        let mut loss = 0.0;
        for ((&xv, &yv), &mv) in x.data().iter().zip(targets.data()).zip(mask.data()) {
            if mv != 0.0 {
                let d = xv - yv;
                loss += mv * d * d;
            }
        }
        let value = Matrix::from_vec(1, 1, vec![loss / denom]);
        self.push(
            value,
            Op::MseMasked {
                pred,
                targets,
                mask,
            },
        )
    }

    // ---- backward ----------------------------------------------------------

    /// Reverse sweep from the scalar `root`, accumulating parameter
    /// gradients into `grads`.
    ///
    /// # Panics
    /// Panics if `root` is not `1 x 1`.
    pub fn backward(&self, root: Var, grads: &mut GradStore) {
        assert_eq!(self.shape(root), (1, 1), "backward root must be scalar");
        self.backward_weighted(root, 1.0, grads);
    }

    /// Like [`Graph::backward`] but seeds the root gradient with
    /// `weight` (used for per-example loss weighting such as PPO
    /// advantages).
    pub fn backward_weighted(&self, root: Var, weight: f32, grads: &mut GradStore) {
        assert_eq!(self.shape(root), (1, 1), "backward root must be scalar");
        let mut adj: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        adj[root.0] = Some(Matrix::from_vec(1, 1, vec![weight]));

        for i in (0..=root.0).rev() {
            let Some(g) = adj[i].take() else { continue };
            let _t = profile::bwd(self.nodes[i].op.kind());
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(id) => {
                    grads.get_mut(*id).axpy(1.0, &g);
                }
                Op::Gather(id, indices) => {
                    let table = grads.get_mut(*id);
                    for (r, &idx) in indices.iter().enumerate() {
                        let dst = table.row_slice_mut(idx as usize);
                        for (d, &s) in dst.iter_mut().zip(g.row_slice(r)) {
                            *d += s;
                        }
                    }
                }
                Op::GatherVar(src, indices) => {
                    let (sr, sc) = self.shape(*src);
                    let mut ds = Matrix::zeros(sr, sc);
                    for (r, &idx) in indices.iter().enumerate() {
                        let dst = ds.row_slice_mut(idx as usize);
                        for (d, &s) in dst.iter_mut().zip(g.row_slice(r)) {
                            *d += s;
                        }
                    }
                    accumulate(&mut adj, *src, ds);
                }
                Op::MatMul(a, b) => {
                    // dA = G * B^T ; dB = A^T * G
                    let da = g.matmul_t(&self.nodes[b.0].value);
                    let db = self.nodes[a.0].value.t_matmul(&g);
                    accumulate(&mut adj, *a, da);
                    accumulate(&mut adj, *b, db);
                }
                Op::MatMulT(a, b) => {
                    // y = A * B^T: dA = G * B ; dB = G^T * A
                    let da = g.matmul(&self.nodes[b.0].value);
                    let db = g.t_matmul(&self.nodes[a.0].value);
                    accumulate(&mut adj, *a, da);
                    accumulate(&mut adj, *b, db);
                }
                Op::Add(a, b) => {
                    let (br, bc) = self.shape(*b);
                    if (br, bc) == g.shape() {
                        accumulate(&mut adj, *b, g.clone());
                    } else {
                        // b was a broadcast row: column-sum the gradient.
                        let mut db = Matrix::zeros(1, bc);
                        for r in 0..g.rows() {
                            for (d, &s) in db.data_mut().iter_mut().zip(g.row_slice(r)) {
                                *d += s;
                            }
                        }
                        accumulate(&mut adj, *b, db);
                    }
                    accumulate(&mut adj, *a, g);
                }
                Op::Sub(a, b) => {
                    let mut db = g.clone();
                    db.scale_inplace(-1.0);
                    accumulate(&mut adj, *b, db);
                    accumulate(&mut adj, *a, g);
                }
                Op::Mul(a, b) => {
                    let da = hadamard(&g, &self.nodes[b.0].value);
                    let db = hadamard(&g, &self.nodes[a.0].value);
                    accumulate(&mut adj, *a, da);
                    accumulate(&mut adj, *b, db);
                }
                Op::Scale(a, alpha) => {
                    let mut da = g;
                    da.scale_inplace(*alpha);
                    accumulate(&mut adj, *a, da);
                }
                Op::AddScalar(a) => {
                    accumulate(&mut adj, *a, g);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[a.0].value;
                    let da = Matrix::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(x.data())
                            .map(|(&gv, &xv)| if xv > 0.0 { gv } else { 0.0 })
                            .collect(),
                    );
                    accumulate(&mut adj, *a, da);
                }
                Op::LeakyRelu(a, slope) => {
                    let x = &self.nodes[a.0].value;
                    let da = Matrix::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(x.data())
                            .map(|(&gv, &xv)| if xv > 0.0 { gv } else { slope * gv })
                            .collect(),
                    );
                    accumulate(&mut adj, *a, da);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let da = Matrix::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(y.data())
                            .map(|(&gv, &yv)| gv * yv * (1.0 - yv))
                            .collect(),
                    );
                    accumulate(&mut adj, *a, da);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let da = Matrix::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(y.data())
                            .map(|(&gv, &yv)| gv * (1.0 - yv * yv))
                            .collect(),
                    );
                    accumulate(&mut adj, *a, da);
                }
                Op::Softplus(a) => {
                    let x = &self.nodes[a.0].value;
                    let da = Matrix::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(x.data())
                            .map(|(&gv, &xv)| gv * stable_sigmoid(xv))
                            .collect(),
                    );
                    accumulate(&mut adj, *a, da);
                }
                Op::ConcatCols(a, b) => {
                    let (ar, ac) = self.shape(*a);
                    let (_, bc) = self.shape(*b);
                    let mut da = Matrix::zeros(ar, ac);
                    let mut db = Matrix::zeros(ar, bc);
                    for r in 0..ar {
                        da.row_slice_mut(r).copy_from_slice(&g.row_slice(r)[..ac]);
                        db.row_slice_mut(r).copy_from_slice(&g.row_slice(r)[ac..]);
                    }
                    accumulate(&mut adj, *a, da);
                    accumulate(&mut adj, *b, db);
                }
                Op::ConcatRows(a, b) => {
                    let (ar, ac) = self.shape(*a);
                    let (br, _) = self.shape(*b);
                    let da = Matrix::from_vec(ar, ac, g.data()[..ar * ac].to_vec());
                    let db = Matrix::from_vec(br, ac, g.data()[ar * ac..].to_vec());
                    accumulate(&mut adj, *a, da);
                    accumulate(&mut adj, *b, db);
                }
                Op::SumAll(a) => {
                    let (ar, ac) = self.shape(*a);
                    accumulate(&mut adj, *a, Matrix::full(ar, ac, g.at(0, 0)));
                }
                Op::MeanAll(a) => {
                    let (ar, ac) = self.shape(*a);
                    let scale = g.at(0, 0) / (ar * ac) as f32;
                    accumulate(&mut adj, *a, Matrix::full(ar, ac, scale));
                }
                Op::SqSum(a) => {
                    let mut da = self.nodes[a.0].value.clone();
                    da.scale_inplace(2.0 * g.at(0, 0));
                    accumulate(&mut adj, *a, da);
                }
                Op::LogSoftmaxRows(a) => {
                    // dx = g - softmax(x) * rowsum(g)
                    let y = &self.nodes[i].value; // log-probs
                    let mut da = g.clone();
                    for r in 0..da.rows() {
                        let gsum: f32 = g.row_slice(r).iter().sum();
                        for (d, &lp) in da.row_slice_mut(r).iter_mut().zip(y.row_slice(r)) {
                            *d -= lp.exp() * gsum;
                        }
                    }
                    accumulate(&mut adj, *a, da);
                }
                Op::PickPerRow(a, indices) => {
                    let (ar, ac) = self.shape(*a);
                    let mut da = Matrix::zeros(ar, ac);
                    for (r, &c) in indices.iter().enumerate() {
                        da.set(r, c as usize, g.at(r, 0));
                    }
                    accumulate(&mut adj, *a, da);
                }
                Op::SpMM(sparse, dense) => {
                    let dd = sparse.t_spmm(&g);
                    accumulate(&mut adj, *dense, dd);
                }
                Op::BceWithLogits {
                    logits,
                    targets,
                    mask,
                } => {
                    let x = &self.nodes[logits.0].value;
                    let total_mask: f32 = mask.sum();
                    let denom = if total_mask > 0.0 { total_mask } else { 1.0 };
                    let scale = g.at(0, 0) / denom;
                    let da = Matrix::from_vec(
                        x.rows(),
                        x.cols(),
                        x.data()
                            .iter()
                            .zip(targets.data())
                            .zip(mask.data())
                            .map(|((&xv, &yv), &mv)| {
                                if mv != 0.0 {
                                    scale * mv * (stable_sigmoid(xv) - yv)
                                } else {
                                    0.0
                                }
                            })
                            .collect(),
                    );
                    accumulate(&mut adj, *logits, da);
                }
                Op::MseMasked {
                    pred,
                    targets,
                    mask,
                } => {
                    let x = &self.nodes[pred.0].value;
                    let total_mask: f32 = mask.sum();
                    let denom = if total_mask > 0.0 { total_mask } else { 1.0 };
                    let scale = 2.0 * g.at(0, 0) / denom;
                    let da = Matrix::from_vec(
                        x.rows(),
                        x.cols(),
                        x.data()
                            .iter()
                            .zip(targets.data())
                            .zip(mask.data())
                            .map(|((&xv, &yv), &mv)| {
                                if mv != 0.0 {
                                    scale * mv * (xv - yv)
                                } else {
                                    0.0
                                }
                            })
                            .collect(),
                    );
                    accumulate(&mut adj, *pred, da);
                }
            }
        }
    }
}

fn accumulate(adj: &mut [Option<Matrix>], v: Var, g: Matrix) {
    match &mut adj[v.0] {
        Some(existing) => existing.axpy(1.0, &g),
        slot @ None => *slot = Some(g),
    }
}

fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    debug_assert_eq!(a.shape(), b.shape());
    Matrix::from_vec(
        a.rows(),
        a.cols(),
        a.data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| x * y)
            .collect(),
    )
}

/// Numerically stable logistic function.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `ln(1 + e^x)`.
#[inline]
pub fn stable_softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}
