//! Property tests for the hand-rolled HTTP parser: malformed input of
//! any shape must classify as 400/413 or park for more bytes — never
//! panic, never hang, never mis-frame a pipelined successor.

use proptest::prelude::*;
use serve::http::{Limits, RequestParser};

fn tight_limits() -> Limits {
    Limits {
        max_head_bytes: 256,
        max_body_bytes: 512,
    }
}

/// Drives the parser to quiescence, counting yielded requests.
/// Returns (requests, error) — an error, when present, terminated the
/// connection exactly once.
fn drain(
    parser: &mut RequestParser,
) -> (Vec<serve::http::Request>, Option<serve::http::HttpError>) {
    let mut out = Vec::new();
    loop {
        match parser.next_request() {
            Ok(Some(req)) => out.push(req),
            Ok(None) => return (out, None),
            Err(err) => return (out, Some(err)),
        }
    }
}

/// Renders a well-formed request from structured parts.
fn render_valid(user: u32, k: u16, body: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "POST /recommend/{user}?k={k} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    raw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte soup — in arbitrary chunkings — never panics and
    /// never hangs: every outcome is a request, a park, or a 400/413.
    #[test]
    fn byte_soup_never_panics(
        soup in prop::collection::vec(0u16..256, 0..200),
        cuts in prop::collection::vec(0usize..200, 0..4),
    ) {
        let soup: Vec<u8> = soup.iter().map(|&b| b as u8).collect();
        let mut parser = RequestParser::new(tight_limits());
        let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (soup.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut prev = 0;
        let mut dead = false;
        for cut in cuts.into_iter().chain([soup.len()]) {
            parser.push(&soup[prev..cut]);
            prev = cut;
            let (_, err) = drain(&mut parser);
            if let Some(err) = err {
                prop_assert!(
                    err.status() == 400 || err.status() == 413,
                    "unexpected classification {err}"
                );
                dead = true;
                break;
            }
        }
        // A connection that survived the whole soup holds at most one
        // incomplete request's worth of bytes (head limit + body).
        if !dead {
            prop_assert!(parser.buffered() <= soup.len());
        }
    }

    /// Every truncation of a valid request parks; completing the bytes
    /// then yields exactly that request, bit-for-bit.
    #[test]
    fn truncation_parks_then_completes(
        user in 0u32..100_000,
        k in 0u16..500,
        body in prop::collection::vec(0u16..256, 0..64),
        cut_seed in 0usize..10_000,
    ) {
        let body: Vec<u8> = body.iter().map(|&b| b as u8).collect();
        let raw = render_valid(user, k, &body);
        let cut = 1 + cut_seed % (raw.len() - 1);

        let mut parser = RequestParser::new(Limits::default());
        parser.push(&raw[..cut]);
        let (early, err) = drain(&mut parser);
        prop_assert!(err.is_none(), "prefix misclassified: {err:?}");
        prop_assert_eq!(early.len(), 0);

        parser.push(&raw[cut..]);
        let (done, err) = drain(&mut parser);
        prop_assert!(err.is_none(), "completed request rejected: {err:?}");
        prop_assert_eq!(done.len(), 1);
        let req = &done[0];
        prop_assert_eq!(&req.method, "POST");
        prop_assert_eq!(req.path.clone(), format!("/recommend/{user}"));
        let want_k = k.to_string();
        prop_assert_eq!(req.query_param("k"), Some(want_k.as_str()));
        prop_assert_eq!(&req.body, &body);
        prop_assert_eq!(parser.buffered(), 0);
    }

    /// Pipelined requests come out whole, in order, regardless of how
    /// the byte stream is chunked.
    #[test]
    fn pipelining_survives_arbitrary_chunking(
        users in prop::collection::vec(0u32..1000, 1..5),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for &user in &users {
            stream.extend_from_slice(&render_valid(user, 3, &[1, 2, 3]));
        }
        let mut parser = RequestParser::new(Limits::default());
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            parser.push(piece);
            let (reqs, err) = drain(&mut parser);
            prop_assert!(err.is_none(), "valid pipeline rejected: {err:?}");
            got.extend(reqs);
        }
        prop_assert_eq!(got.len(), users.len());
        for (req, &user) in got.iter().zip(&users) {
            prop_assert_eq!(req.path.clone(), format!("/recommend/{user}"));
            prop_assert_eq!(&req.body, &[1u8, 2, 3]);
        }
        prop_assert_eq!(parser.buffered(), 0);
    }

    /// Oversized heads are 413 whether they arrive all at once or
    /// dribbled in — and even when no terminator ever shows up.
    #[test]
    fn oversized_heads_are_413(
        pad in 300usize..2000,
        chunk in 1usize..128,
    ) {
        let mut raw = b"GET /x HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', pad));
        // Note: no terminating blank line — the parser must reject on
        // budget alone rather than waiting forever.
        let mut parser = RequestParser::new(tight_limits());
        let mut verdict = None;
        for piece in raw.chunks(chunk) {
            parser.push(piece);
            if let (_, Some(err)) = drain(&mut parser) {
                verdict = Some(err);
                break;
            }
        }
        let err = verdict.expect("oversized head must be rejected");
        prop_assert_eq!(err.status(), 413);
    }

    /// Declared bodies over budget are 413 immediately — the parser
    /// never buffers toward an oversized body.
    #[test]
    fn oversized_declared_body_is_413(extra in 1usize..100_000) {
        let limits = tight_limits();
        let raw = format!(
            "POST /feedback HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            limits.max_body_bytes + extra
        );
        let mut parser = RequestParser::new(limits);
        parser.push(raw.as_bytes());
        let (_, err) = drain(&mut parser);
        prop_assert_eq!(err.expect("must reject").status(), 413);
    }

    /// Bad percent-escapes in a complete request are always 400.
    #[test]
    fn bad_escapes_are_400(tail in 0u16..256, place in 0usize..2) {
        let bad = match place {
            0 => format!("/x%{:01X}", tail % 16),          // truncated escape
            _ => format!("/x%Z{}", (b'A' + (tail % 26) as u8) as char), // non-hex
        };
        let raw = format!("GET {bad} HTTP/1.1\r\n\r\n");
        let mut parser = RequestParser::new(Limits::default());
        parser.push(raw.as_bytes());
        let (_, err) = drain(&mut parser);
        prop_assert_eq!(err.expect("bad escape must be rejected").status(), 400);
    }
}
