//! The headline scale criterion for the event-loop driver: 10k idle
//! keep-alive connections held open against one server, served by a
//! **fixed-size** thread set — no thread per connection — while
//! `/healthz` stays live with sane latency, and a graceful shutdown
//! still retires every connection with a clean ledger.
//!
//! The server runs as a child process (the real `serve` binary, which
//! also exercises the `--shards`/`--max-conns` flags): client and
//! server each get their own fd budget, so 10k sockets per side fit
//! under a 20k `RLIMIT_NOFILE` that an unprivileged container cannot
//! raise. The child's thread count is read from `/proc/<pid>/status`
//! — the number that proves connections do not cost threads.
//!
//! If the child reports the blocking fallback driver (no poller on
//! this target), the test downgrades to a small smoke: the blocking
//! driver pins one pool task per connection by design.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use recsys::remote::HttpClient;
use telemetry::json::{self, Json};

/// A process's thread count per the kernel (Linux only).
fn process_threads(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

#[test]
fn ten_thousand_idle_connections_on_a_fixed_thread_set() {
    let requested = 10_000usize;
    // The client fleet lives in this process; leave headroom for the
    // harness's own fds.
    let budget = serve::raise_nofile((requested + 4096) as u64).unwrap_or(1024);
    let target = requested.min(budget.saturating_sub(2048) as usize);

    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--scale",
            "0.02",
            "--eval-users",
            "16",
            "--seed",
            "9",
            "--threads",
            "2",
            "--shards",
            "4",
            "--max-conns",
            "12000",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve binary");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));

    let mut line = String::new();
    stdout.read_line(&mut line).expect("serving line");
    let serving = json::parse(line.trim()).expect("serving JSON");
    assert_eq!(serving.get("type").and_then(Json::as_str), Some("serving"));
    let addr = serving
        .get("addr")
        .and_then(Json::as_str)
        .expect("addr in serving line")
        .to_string();
    let driver = serving.get("driver").and_then(Json::as_str).unwrap_or("?");
    assert_eq!(
        serving.get("shards").and_then(Json::as_u64),
        Some(4),
        "serving line must disclose the shard count"
    );

    // Blocking fallback pins a pool task per connection — out of
    // contract for an idle fleet, so shrink to a smoke.
    let (target, check_threads) = if driver == "event" {
        (target, true)
    } else {
        (2, false)
    };

    let ramp = Instant::now();
    let mut fleet = Vec::with_capacity(target);
    for i in 0..target {
        // On small machines the client can outrun the accept loop and
        // overflow the 128-entry listen backlog (SYN drops turn into
        // 1s retransmit stalls) — yield so the loop thread keeps up.
        if i % 64 == 0 {
            std::thread::yield_now();
        }
        let stream = TcpStream::connect(&addr)
            .unwrap_or_else(|err| panic!("idle connect #{i} failed: {err}"));
        fleet.push(stream);
    }
    println!("ramped {} connections in {:?}", fleet.len(), ramp.elapsed());
    // Give the poller a beat to drain the accept backlog.
    std::thread::sleep(Duration::from_millis(100));

    if check_threads {
        let threads_now = process_threads(child.id()).expect("/proc on linux");
        assert!(
            threads_now < 32,
            "{threads_now} server threads while holding {} connections — \
             the server is spending threads per connection",
            fleet.len()
        );
    }

    // The server stays live under the idle fleet: probe /healthz on a
    // fresh keep-alive connection and check the tail latency.
    let mut client = HttpClient::new(addr);
    let mut latencies = Vec::with_capacity(100);
    for _ in 0..100 {
        let start = Instant::now();
        let (status, body) = client.request("GET", "/healthz", None).expect("healthz");
        latencies.push(start.elapsed());
        assert_eq!(status, 200);
        assert!(
            body.get("generation").and_then(Json::as_u64).is_some(),
            "malformed /healthz body: {}",
            body.render()
        );
    }
    latencies.sort();
    let p99 = latencies[98];
    assert!(
        p99 < Duration::from_millis(250),
        "/healthz p99 {p99:?} under {} idle connections — the loop is stalling",
        fleet.len()
    );

    // Graceful shutdown retires the whole fleet with a clean ledger.
    drop(client);
    drop(fleet);
    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(b"quit\n")
        .expect("send quit");
    let mut shutdown_line = None;
    let mut line = String::new();
    while {
        line.clear();
        stdout.read_line(&mut line).expect("child stdout") > 0
    } {
        if let Ok(value) = json::parse(line.trim()) {
            if value.get("type").and_then(Json::as_str) == Some("shutdown") {
                shutdown_line = Some(value);
                break;
            }
        }
    }
    let shutdown = shutdown_line.expect("shutdown ledger line");
    assert_eq!(
        shutdown.get("dropped").and_then(Json::as_u64),
        Some(0),
        "idle fleet shutdown dropped requests: {}",
        shutdown.render()
    );
    let status = child.wait().expect("child exit");
    assert!(status.success(), "serve binary exited nonzero: {status}");
}
