//! Property tests over the sans-io [`serve::Connection`] machine —
//! the single implementation of pipelining, response ordering, and
//! close semantics shared by the event-loop and blocking drivers.
//!
//! The properties model a hostile transport: reads arrive in
//! arbitrary-sized fragments, writes are accepted in arbitrary-sized
//! quanta, and the driver interleaves servicing and flushing in
//! arbitrary order (the sans-io analogue of wakeup timing). Under
//! every interleaving: no panic, no livelock, every accepted request
//! answered exactly once, responses in request order.

use proptest::prelude::*;
use serve::{Connection, Limits};

/// Renders request `i` with a sentinel path unique even as a
/// substring (zero-padded), optionally asking to close.
fn render_request(i: usize, close: bool) -> String {
    format!(
        "GET /req-{i:04} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n{}\r\n",
        if close { "Connection: close\r\n" } else { "" }
    )
}

/// Drives the machine to quiescence under the given fragmentation /
/// write-quota / interleaving schedule. Returns (accepted, responded,
/// completed, transport bytes). Panics (via the iteration cap) if the
/// machine livelocks.
fn drive(
    stream: &[u8],
    chunks: &[usize],
    writes: &[usize],
    write_first: &[bool],
) -> (usize, usize, u64, Vec<u8>) {
    let mut conn = Connection::new(Limits::default());
    let mut fed = 0;
    let mut accepted = 0;
    let mut responded = 0;
    let mut completed = 0u64;
    let mut output = Vec::new();

    for iteration in 0.. {
        assert!(iteration < 200_000, "connection machine livelocked");
        // One "readiness event": feed a fragment if the peer has more.
        if fed < stream.len() {
            let take = chunks[iteration % chunks.len()].min(stream.len() - fed);
            let outcome = conn.feed(&stream[fed..fed + take]);
            fed += take;
            accepted += outcome.accepted;
        }

        let service = |conn: &mut Connection, responded: &mut usize| {
            if let Some(err) = conn.take_due_error() {
                conn.push_error_response(err.status(), "{\"error\":\"bad\"}");
            }
            while conn.has_ready_request() {
                let inbound = conn.take_request().expect("ready");
                let body = format!("{{\"echo\":\"{}\"}}", inbound.request.path);
                conn.push_response(200, &body, false);
                *responded += 1;
            }
        };
        let flush = |conn: &mut Connection, completed: &mut u64, output: &mut Vec<u8>| {
            if conn.wants_write() {
                let quota = writes[iteration % writes.len()].min(conn.pending_output().len());
                output.extend_from_slice(&conn.pending_output()[..quota]);
                *completed += conn.advance_write(quota);
            }
        };

        // Wakeup-order interleaving: sometimes the write readiness
        // fires before the dispatch completes, sometimes after.
        if write_first[iteration % write_first.len()] {
            flush(&mut conn, &mut completed, &mut output);
            service(&mut conn, &mut responded);
        } else {
            service(&mut conn, &mut responded);
            flush(&mut conn, &mut completed, &mut output);
        }

        let input_done = fed >= stream.len() || conn.is_closing();
        if input_done && !conn.wants_write() && !conn.has_ready_request() && !conn.in_flight() {
            // Let a due error surface before declaring quiescence.
            if conn.take_due_error().is_none() {
                break;
            }
            conn.push_error_response(400, "{\"error\":\"bad\"}");
        }
    }
    (accepted, responded, completed, output)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Well-formed pipelined traffic: every request the machine
    /// accepts is answered exactly once, in order, regardless of how
    /// the transport fragments reads and writes or how the driver
    /// interleaves dispatch with flushing.
    #[test]
    fn interleavings_never_lose_or_reorder_pipelined_requests(
        n_reqs in 1usize..10,
        close_at_raw in 0usize..11,
        chunks in prop::collection::vec(1usize..64, 1..40),
        writes in prop::collection::vec(1usize..48, 1..40),
        write_first_raw in prop::collection::vec(0u8..2, 1..16),
    ) {
        // 10 encodes "no close" (n_reqs tops out at 9).
        let close_at = (close_at_raw < 10).then_some(close_at_raw);
        let write_first: Vec<bool> = write_first_raw.iter().map(|&b| b == 1).collect();
        let mut stream = Vec::new();
        for i in 0..n_reqs {
            stream.extend_from_slice(render_request(i, close_at == Some(i)).as_bytes());
        }

        let (accepted, responded, completed, output) =
            drive(&stream, &chunks, &writes, &write_first);

        // No request outlives the run unanswered, none answered twice.
        prop_assert_eq!(responded, accepted);
        prop_assert_eq!(completed as usize, responded);
        // At least the requests up to (and including) any close made it
        // through; a close can only shed *later* pipelined requests.
        let must_answer = close_at.filter(|&c| c < n_reqs).map_or(n_reqs, |c| c + 1);
        prop_assert!(accepted >= must_answer,
            "lost a request before the close point: {} < {}", accepted, must_answer);

        // Responses appear in request order on the wire.
        let text = String::from_utf8(output).expect("responses are ascii");
        let mut last = None;
        for i in 0..n_reqs {
            if let Some(pos) = text.find(&format!("/req-{i:04}")) {
                if let Some(prev) = last {
                    prop_assert!(pos > prev, "response {} out of order", i);
                }
                last = Some(pos);
            }
        }
    }

    /// Hostile bytes: arbitrary garbage interleaved with real traffic
    /// never panics or livelocks, poisons at most once, and every
    /// response still flushed is well-formed HTTP.
    #[test]
    fn garbage_never_panics_or_hangs(
        prefix_reqs in 0usize..3,
        garbage_raw in prop::collection::vec(0u16..256, 0..512),
        chunks in prop::collection::vec(1usize..32, 1..20),
        writes in prop::collection::vec(1usize..32, 1..20),
    ) {
        let garbage: Vec<u8> = garbage_raw.iter().map(|&b| b as u8).collect();
        let mut stream = Vec::new();
        for i in 0..prefix_reqs {
            stream.extend_from_slice(render_request(i, false).as_bytes());
        }
        stream.extend_from_slice(&garbage);

        let (accepted, responded, completed, output) =
            drive(&stream, &chunks, &writes, &[false]);

        prop_assert_eq!(responded, accepted);
        prop_assert_eq!(completed as usize, responded);
        // Whatever went out is a whole number of HTTP/1.1 responses.
        if !output.is_empty() {
            prop_assert!(output.starts_with(b"HTTP/1.1 "));
        }
    }
}
