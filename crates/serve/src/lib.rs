//! # serve
//!
//! A zero-dependency HTTP/1.1 recommendation server over
//! [`std::net::TcpListener`], exposing the PoisonRec attack surface
//! over a real socket (DESIGN.md §5e):
//!
//! | route                     | semantics                                    |
//! |---------------------------|----------------------------------------------|
//! | `GET /recommend/{u}?k=`   | top-k list from the live snapshot            |
//! | `POST /feedback`          | buffer trajectories (optional online filter) |
//! | `POST /retrain`           | drain feedback → fine-tune → atomic publish  |
//! | `GET /info`               | experimenter-side disclosure                 |
//! | `GET /metrics`            | global telemetry registry snapshot           |
//! | `GET /healthz`            | liveness + current generation                |
//!
//! Layering: [`http`] is the sans-io parser, [`app`] the
//! transport-free router, and this module the socket plumbing —
//! accept loop, keep-alive/pipelining, per-request panic isolation,
//! the JSONL access log, and graceful shutdown that drains every
//! accepted request before [`Server::shutdown`] returns.
//!
//! Connections are handled on a dedicated [`runtime::WorkerPool`]
//! owned by the server (never `runtime::global()`, which sizes itself
//! to spare cores and may legitimately have zero workers). One
//! connection occupies one pool task for its lifetime, so a server
//! with `threads` workers serves at most `threads` concurrent
//! connections; excess accepts queue in the pool.

pub mod app;
pub mod http;

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use telemetry::json::Json;
use telemetry::JsonlSink;

pub use app::{AppResponse, RecApp};
pub use http::{HttpError, Limits, Request, RequestParser};

/// How a [`Server`] is wired up; independent of the system it serves.
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1; `0` asks the OS for a free one
    /// (tests always do — see [`Server::local_addr`]).
    pub port: u16,
    /// Connection-handling worker threads (min 1).
    pub threads: usize,
    /// One JSONL access event per request when set.
    pub access_log: Option<std::path::PathBuf>,
    /// Scripted per-request faults: each request consumes one fault
    /// ordinal, and a scripted ordinal panics inside the handler's
    /// unwind boundary — surfacing as a 500 while the server lives on.
    pub fault_plan: Option<Arc<runtime::FaultPlan>>,
    /// Parser byte budgets.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            port: 0,
            threads: 2,
            access_log: None,
            fault_plan: None,
            limits: Limits::default(),
        }
    }
}

/// Counters a graceful shutdown reports back; `dropped()` must be 0.
#[derive(Clone, Copy, Debug)]
pub struct ShutdownStats {
    /// Requests fully parsed off a socket.
    pub accepted: u64,
    /// Responses fully written back.
    pub completed: u64,
}

impl ShutdownStats {
    /// Accepted requests that never got a response — the graceful-
    /// shutdown contract is that this is always zero.
    pub fn dropped(&self) -> u64 {
        self.accepted.saturating_sub(self.completed)
    }
}

struct Shared {
    app: RecApp,
    log: Option<JsonlSink>,
    started: Instant,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    connection_ids: AtomicU64,
    requests_accepted: AtomicU64,
    responses_completed: AtomicU64,
    fault_plan: Option<Arc<runtime::FaultPlan>>,
    limits: Limits,
}

/// A running server. Dropping it performs a graceful shutdown.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Owned pool; dropped last so queued connections finish.
    pool: Option<Arc<runtime::WorkerPool>>,
}

impl Server {
    /// Binds `127.0.0.1:{port}` and starts accepting. The app is built
    /// by the caller so tests can inject defenses or prebuilt systems.
    pub fn start(app: RecApp, cfg: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let log = match &cfg.access_log {
            Some(path) => Some(JsonlSink::create(path)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            app,
            log,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            connection_ids: AtomicU64::new(0),
            requests_accepted: AtomicU64::new(0),
            responses_completed: AtomicU64::new(0),
            fault_plan: cfg.fault_plan,
            limits: cfg.limits,
        });
        if let Some(log) = &shared.log {
            log.emit(
                &Json::obj()
                    .field("type", "manifest")
                    .field("kind", "access-log")
                    .field("addr", addr.to_string())
                    .field("ranker", shared.app.system().ranker_name())
                    .field("threads", cfg.threads.max(1)),
            )?;
        }

        let pool = Arc::new(runtime::WorkerPool::new(cfg.threads.max(1)));
        let accept_shared = Arc::clone(&shared);
        let accept_pool = Arc::clone(&pool);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_pool))?;

        Ok(Self {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            pool: Some(pool),
        })
    }

    /// The bound address — with `port: 0`, the OS-assigned one.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The generation currently being served.
    pub fn generation(&self) -> u64 {
        self.shared.app.generation()
    }

    /// Stops accepting, waits for every in-flight connection to drain,
    /// and reports the request/response ledger. Idempotent via Drop.
    pub fn shutdown(mut self) -> ShutdownStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ShutdownStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Drain: every accepted connection decrements on exit; their
        // read loops observe the shutdown flag within one poll tick.
        while self.shared.active_connections.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Dropping the pool joins its workers (queue is drained first).
        self.pool = None;
        ShutdownStats {
            accepted: self.shared.requests_accepted.load(Ordering::SeqCst),
            completed: self.shared.responses_completed.load(Ordering::SeqCst),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.pool.is_some() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, pool: Arc<runtime::WorkerPool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                telemetry::metrics::gauge("serve_active_connections").add(1);
                let conn_shared = Arc::clone(&shared);
                pool.spawn(move || {
                    let conn = conn_shared.connection_ids.fetch_add(1, Ordering::Relaxed);
                    handle_connection(stream, &conn_shared, conn);
                    conn_shared
                        .active_connections
                        .fetch_sub(1, Ordering::SeqCst);
                    telemetry::metrics::gauge("serve_active_connections").add(-1);
                });
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Ticks of the 20ms read timeout a half-received request may keep a
/// draining connection alive for (~2s), bounding shutdown latency
/// against clients that stall mid-request.
const DRAIN_GRACE_TICKS: u32 = 100;

fn handle_connection(stream: TcpStream, shared: &Shared, conn: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut stream = stream;
    let mut parser = RequestParser::new(shared.limits);
    let mut read_buf = [0u8; 8192];
    let mut drain_ticks = 0u32;

    loop {
        // Serve everything already buffered (pipelining) first.
        loop {
            match parser.next_request() {
                Ok(Some(req)) => {
                    shared.requests_accepted.fetch_add(1, Ordering::SeqCst);
                    let closing = !req.keep_alive || shared.shutdown.load(Ordering::SeqCst);
                    if !respond(&mut stream, shared, conn, &req, closing) {
                        return;
                    }
                    shared.responses_completed.fetch_add(1, Ordering::SeqCst);
                    if closing {
                        return;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    // Framing is untrustworthy past a parse error:
                    // answer and hang up.
                    reject(&mut stream, shared, conn, &err);
                    return;
                }
            }
        }

        match stream.read(&mut read_buf) {
            Ok(0) => return,
            Ok(n) => {
                drain_ticks = 0;
                parser.push(&read_buf[..n]);
            }
            Err(err)
                if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    if parser.buffered() == 0 {
                        return;
                    }
                    // A request is mid-flight: grant a bounded grace.
                    drain_ticks += 1;
                    if drain_ticks > DRAIN_GRACE_TICKS {
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}

/// Routes `req`, isolating handler panics (including scripted
/// [`runtime::FaultPlan`] faults) into 500s. Returns false if the
/// response could not be written (peer went away).
fn respond(
    stream: &mut TcpStream,
    shared: &Shared,
    conn: u64,
    req: &Request,
    closing: bool,
) -> bool {
    let timer = Instant::now();
    telemetry::metrics::counter("serve_requests_total").inc();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = &shared.fault_plan {
            plan.on_unit();
        }
        shared.app.handle(req)
    }));
    let resp = outcome.unwrap_or_else(|_| {
        telemetry::metrics::counter("serve_request_panics_total").inc();
        AppResponse {
            status: 500,
            body: Json::obj().field("error", "internal error"),
            generation: shared.app.generation(),
        }
    });
    let micros = timer.elapsed().as_micros() as u64;
    let ok = write_response(stream, resp.status, &resp.body, closing);
    log_access(
        shared,
        conn,
        &req.method,
        &req.path,
        resp.status,
        resp.generation,
        micros,
    );
    if resp.status >= 500 {
        telemetry::metrics::counter("serve_responses_5xx_total").inc();
    }
    ok
}

fn write_response(stream: &mut TcpStream, status: u16, body: &Json, close: bool) -> bool {
    let bytes = http::render_response(status, &body.render(), close);
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .is_ok()
}

/// Answers a parse error and logs it. The request line never became
/// trustworthy, so method and path are recorded as `"?"` and the
/// connection always closes.
fn reject(stream: &mut TcpStream, shared: &Shared, conn: u64, err: &http::HttpError) {
    let body = Json::obj().field("error", err.reason().to_string());
    let _ = write_response(stream, err.status(), &body, true);
    log_access(
        shared,
        conn,
        "?",
        "?",
        err.status(),
        shared.app.generation(),
        0,
    );
}

/// One `{"type":"access", ...}` event per request. `ts_micros` is a
/// monotonic clock (micros since server start), so the validator can
/// require per-connection monotonicity without wall-clock caveats.
fn log_access(
    shared: &Shared,
    conn: u64,
    method: &str,
    path: &str,
    status: u16,
    generation: u64,
    micros: u64,
) {
    let Some(log) = &shared.log else {
        return;
    };
    let _ = log.emit(
        &Json::obj()
            .field("type", "access")
            .field("conn", conn)
            .field("method", method.to_string())
            .field("path", path.to_string())
            .field("status", u64::from(status))
            .field("generation", generation)
            .field("micros", micros)
            .field("ts_micros", shared.started.elapsed().as_micros() as u64),
    );
}
