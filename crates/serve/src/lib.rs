//! # serve
//!
//! A zero-dependency HTTP/1.1 recommendation server over
//! [`std::net::TcpListener`], exposing the PoisonRec attack surface
//! over a real socket (DESIGN.md §5e–f):
//!
//! | route                     | semantics                                    |
//! |---------------------------|----------------------------------------------|
//! | `GET /recommend/{u}?k=`   | top-k list from the owning shard's snapshot  |
//! | `POST /feedback`          | buffer trajectories (optional online filter) |
//! | `POST /retrain`           | drain feedback → fine-tune → atomic publish  |
//! | `GET /info`               | experimenter-side disclosure                 |
//! | `GET /metrics`            | metrics plane: JSON, or `?format=prom` text  |
//! |                           | (`?window=SECS` narrows windowed series)     |
//! | `GET /healthz`            | liveness + current generation                |
//!
//! Layering: [`http`] is the sans-io parser, [`conn`] the sans-io
//! per-connection state machine, [`app`] the transport-free router
//! (typed [`Route`]s over sharded state), [`poll`] the readiness
//! layer, and this module the drivers that move bytes.
//!
//! ## The event-loop driver (default)
//!
//! One `serve-loop` thread owns every socket: a [`poll::Poller`]
//! (epoll, or ppoll fallback) reports readiness, the loop feeds bytes
//! through each connection's [`Connection`] machine, answers *fast*
//! routes (reads — lock-free snapshot pins) inline, and offloads
//! *slow* routes (feedback/retrain) to a fixed [`runtime::WorkerPool`]
//! via [`runtime::WorkerPool::spawn_waking`], whose completion wakes
//! the parked poller through a [`poll::Waker`] pipe. Idle keep-alive
//! connections therefore cost one registered fd and a small state
//! machine — **zero threads** — and total thread count is fixed at
//! `1 + threads` regardless of connection count (the acceptance
//! criterion `tests/many_conns.rs` pins at 10k connections).
//!
//! ## The blocking driver (fallback + differential tests)
//!
//! The pre-PR-6 thread-per-connection driver is retained behind
//! [`DriverKind::Blocking`]: one pool task per connection, 20 ms read
//! timeouts, same graceful-drain rules. It drives the *same*
//! [`Connection`] machine — one implementation of pipelining,
//! response ordering, and close semantics, so the drivers cannot
//! drift. Non-Linux targets fall back to it automatically.
//!
//! Both drivers keep the accepted/completed ledger: every request
//! parsed off a socket is counted accepted, every response whose last
//! byte reached the kernel counted completed, and a graceful
//! [`Server::shutdown`] reports them with `dropped() == 0`.

pub mod app;
pub mod conn;
pub mod http;
pub mod poll;

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use recsys::system::ConfigError;
use telemetry::json::Json;
use telemetry::AsyncJsonlSink;

pub use app::{AppResponse, FeedbackOutcome, MetricsFormat, RecApp, Route, RouteError};
pub use conn::{Connection, FeedOutcome, Inbound};
pub use http::{HttpError, Limits, Request, RequestParser};
pub use poll::{raise_nofile, Interest, Poller, Waker};

/// Which byte-moving driver a [`Server`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DriverKind {
    /// Readiness-driven event loop (epoll/ppoll); falls back to
    /// [`DriverKind::Blocking`] where no poller is available.
    #[default]
    Event,
    /// One pool task per connection with timeout-polled reads.
    Blocking,
}

impl DriverKind {
    /// Stable lowercase name used in logs and manifests.
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::Event => "event",
            DriverKind::Blocking => "blocking",
        }
    }
}

/// How a [`Server`] is wired up; independent of the system it serves.
/// Construct via [`ServerConfig::builder`] for validation, or fill
/// fields directly (tests use `..Default::default()`).
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1; `0` asks the OS for a free one
    /// (tests always do — see [`Server::local_addr`]).
    pub port: u16,
    /// Handler worker threads (min 1). Under the event driver these
    /// run offloaded feedback/retrain handlers; under the blocking
    /// driver they are the per-connection tasks.
    pub threads: usize,
    /// Serving-state shards (min 1): snapshot cells + feedback queues.
    pub shards: usize,
    /// Connection ceiling; accepts beyond it are dropped at the door.
    pub max_conns: usize,
    /// One JSONL access event per request when set.
    pub access_log: Option<std::path::PathBuf>,
    /// Scripted per-request faults: each request consumes one fault
    /// ordinal, and a scripted ordinal panics inside the handler's
    /// unwind boundary — surfacing as a 500 while the server lives on.
    pub fault_plan: Option<Arc<runtime::FaultPlan>>,
    /// Parser byte budgets.
    pub limits: Limits,
    /// Byte-moving driver; [`DriverKind::Event`] unless overridden.
    pub driver: DriverKind,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            port: 0,
            threads: 2,
            shards: 1,
            max_conns: 10_000,
            access_log: None,
            fault_plan: None,
            limits: Limits::default(),
            driver: DriverKind::Event,
        }
    }
}

impl ServerConfig {
    /// A validating builder seeded with the defaults, matching the
    /// `SystemConfig::builder` idiom.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builds a [`ServerConfig`], rejecting values that would otherwise
/// surface as a wedged or silently-degraded server.
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    pub fn port(mut self, port: u16) -> Self {
        self.cfg.port = port;
        self
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    pub fn max_conns(mut self, max_conns: usize) -> Self {
        self.cfg.max_conns = max_conns;
        self
    }

    pub fn access_log(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.cfg.access_log = Some(path.into());
        self
    }

    pub fn fault_plan(mut self, plan: Arc<runtime::FaultPlan>) -> Self {
        self.cfg.fault_plan = Some(plan);
        self
    }

    pub fn limits(mut self, limits: Limits) -> Self {
        self.cfg.limits = limits;
        self
    }

    pub fn driver(mut self, driver: DriverKind) -> Self {
        self.cfg.driver = driver;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.threads == 0 {
            return Err(ConfigError {
                field: "threads",
                message: "a server with no handler threads can answer nothing".into(),
            });
        }
        if cfg.shards == 0 {
            return Err(ConfigError {
                field: "shards",
                message: "at least one serving shard must hold the snapshot".into(),
            });
        }
        if cfg.max_conns == 0 {
            return Err(ConfigError {
                field: "max_conns",
                message: "a zero connection ceiling rejects every client".into(),
            });
        }
        if cfg.limits.max_head_bytes == 0 || cfg.limits.max_body_bytes == 0 {
            return Err(ConfigError {
                field: "limits",
                message: "zero byte budgets reject every request".into(),
            });
        }
        Ok(cfg)
    }
}

/// Counters a graceful shutdown reports back; `dropped()` must be 0.
#[derive(Clone, Copy, Debug)]
pub struct ShutdownStats {
    /// Requests fully parsed off a socket.
    pub accepted: u64,
    /// Responses fully written back.
    pub completed: u64,
}

impl ShutdownStats {
    /// Accepted requests that never got a response — the graceful-
    /// shutdown contract is that this is always zero.
    pub fn dropped(&self) -> u64 {
        self.accepted.saturating_sub(self.completed)
    }
}

struct Shared {
    app: RecApp,
    /// Access log behind a bounded queue + writer thread: the event
    /// loop pays one `try_send`, never file I/O (DESIGN.md §5i).
    log: Option<AsyncJsonlSink>,
    started: Instant,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    connection_ids: AtomicU64,
    requests_accepted: AtomicU64,
    responses_completed: AtomicU64,
    /// Ledger-counted access events enqueued to the log.
    access_events: AtomicU64,
    /// Ledger-counted access events dropped (log queue full).
    access_dropped: AtomicU64,
    fault_plan: Option<Arc<runtime::FaultPlan>>,
    limits: Limits,
    max_conns: usize,
}

/// `serve_requests` label values are drawn from closed vocabularies
/// (7 routes x 7 statuses x shard count), but the cap still guards the
/// registry against a future labeling bug.
const REQUEST_FAMILY_CAP: usize = 256;

fn request_family() -> &'static Arc<telemetry::CounterFamily> {
    static FAMILY: OnceLock<Arc<telemetry::CounterFamily>> = OnceLock::new();
    FAMILY.get_or_init(|| {
        telemetry::stream::counter_family_with_cap(
            "serve_requests",
            &["route", "status", "shard"],
            REQUEST_FAMILY_CAP,
        )
    })
}

/// Windowed request-latency histogram (seconds), sub-millisecond-heavy
/// bounds: snapshot reads answer in tens of microseconds.
fn request_secs() -> &'static Arc<telemetry::WindowedHistogram> {
    static HIST: OnceLock<Arc<telemetry::WindowedHistogram>> = OnceLock::new();
    HIST.get_or_init(|| {
        telemetry::stream::windowed_histogram(
            "serve_request_secs",
            &[
                1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
                0.1, 0.25, 0.5, 1.0, 2.5,
            ],
        )
    })
}

/// Windowed event-loop lag histogram (micros), replacing the old
/// last-write-wins gauge of the same name: p99 lag over the last
/// minute instead of "whatever the final write saw".
fn loop_lag_micros() -> &'static Arc<telemetry::WindowedHistogram> {
    static HIST: OnceLock<Arc<telemetry::WindowedHistogram>> = OnceLock::new();
    HIST.get_or_init(|| {
        telemetry::stream::windowed_histogram(
            "serve_event_loop_lag_micros",
            &[
                10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5,
                2.5e5, 5e5, 1e6,
            ],
        )
    })
}

impl Shared {
    /// Computes the response to one request, isolating handler panics
    /// (including scripted [`runtime::FaultPlan`] faults) into 500s.
    /// Every request consumes one fault ordinal, fast or slow.
    fn compute(&self, route: &Result<Route, RouteError>, body: &[u8]) -> AppResponse {
        telemetry::metrics::counter("serve_requests_total").inc();
        let timer = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = &self.fault_plan {
                plan.on_unit();
            }
            match route {
                Ok(route) => self.app.dispatch(route, body),
                Err(err) => AppResponse {
                    status: err.status,
                    body: Json::obj().field("error", err.message.clone()),
                    raw: None,
                    content_type: "application/json",
                    generation: self.app.generation(),
                    shard: 0,
                    feedback: None,
                },
            }
        }));
        let resp = outcome.unwrap_or_else(|_| {
            telemetry::metrics::counter("serve_request_panics_total").inc();
            AppResponse {
                status: 500,
                body: Json::obj().field("error", "internal error"),
                raw: None,
                content_type: "application/json",
                generation: self.app.generation(),
                shard: 0,
                feedback: None,
            }
        });
        if resp.status >= 500 {
            telemetry::metrics::counter("serve_responses_5xx_total").inc();
        }
        if telemetry::stream::enabled() {
            let route_label = match route {
                Ok(route) => route.label(),
                Err(_) => "invalid",
            };
            let status = resp.status.to_string();
            let shard = resp.shard.to_string();
            request_family().add(&[route_label, &status, &shard], 1);
            request_secs().record(timer.elapsed().as_secs_f64());
        }
        resp
    }
}

/// One `{"type":"access", ...}` event per request. `ts_micros` is a
/// monotonic clock (micros since server start), so the validator can
/// require per-connection monotonicity without wall-clock caveats.
/// `shard` is the snapshot cell that answered; `lag_micros` the
/// parse-to-dispatch gap (event-loop lag under the event driver).
///
/// The emit is one bounded-queue `try_send`; a full queue drops the
/// line, counted in `serve_access_log_dropped_total` and — for
/// ledger-counted requests (parse-error responses, method `"?"`, are
/// outside the accepted/completed ledger) — in the drop-accounting
/// summary `validate_jsonl --access-log` checks:
/// `events + dropped == completed`.
///
/// Judged `POST /feedback` requests additionally carry the defense
/// verdict (`verdict`/`detector`/`offered`/`accepted`/
/// `pending_before`/`pending`), making every admission decision
/// auditable offline: `validate_jsonl --access-log` checks the verdict
/// vocabulary and that `pending == pending_before + accepted` — i.e.
/// rejected feedback never increments queue depth.
#[allow(clippy::too_many_arguments)]
fn log_access(
    shared: &Shared,
    conn: u64,
    method: &str,
    path: &str,
    status: u16,
    generation: u64,
    shard: u64,
    micros: u64,
    lag_micros: u64,
    feedback: Option<FeedbackOutcome>,
) {
    let Some(log) = &shared.log else {
        return;
    };
    let counted = method != "?";
    let mut event = Json::obj()
        .field("type", "access")
        .field("conn", conn)
        .field("method", method.to_string())
        .field("path", path.to_string())
        .field("status", u64::from(status))
        .field("generation", generation)
        .field("shard", shard)
        .field("micros", micros)
        .field("lag_micros", lag_micros)
        .field("ts_micros", shared.started.elapsed().as_micros() as u64);
    if let Some(fb) = feedback {
        event = event
            .field("verdict", fb.verdict)
            .field("detector", fb.detector)
            .field("offered", fb.offered)
            .field("accepted", fb.accepted)
            .field("pending_before", fb.pending_before)
            .field("pending", fb.pending);
    }
    let emitted = log.emit(event);
    if emitted {
        if counted {
            shared.access_events.fetch_add(1, Ordering::Relaxed);
        }
    } else {
        telemetry::metrics::counter("serve_access_log_dropped_total").inc();
        if counted {
            shared.access_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A running server. Dropping it performs a graceful shutdown.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    driver_thread: Option<std::thread::JoinHandle<()>>,
    /// Owned pool; dropped last so queued handlers finish.
    pool: Option<Arc<runtime::WorkerPool>>,
    /// Wakes the parked event loop at shutdown (event driver only).
    waker: Option<Arc<Waker>>,
    driver: DriverKind,
}

impl Server {
    /// Binds `127.0.0.1:{port}` and starts serving. The app is built
    /// by the caller so tests can inject defenses or prebuilt systems;
    /// it is resharded to `cfg.shards` before the first byte is
    /// served.
    pub fn start(mut app: RecApp, cfg: ServerConfig) -> std::io::Result<Self> {
        app.reshard(cfg.shards.max(1));
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let log = match &cfg.access_log {
            Some(path) => Some(AsyncJsonlSink::create(
                path,
                telemetry::sink::ASYNC_SINK_CAPACITY,
            )?),
            None => None,
        };
        let shared = Arc::new(Shared {
            app,
            log,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            connection_ids: AtomicU64::new(0),
            requests_accepted: AtomicU64::new(0),
            responses_completed: AtomicU64::new(0),
            access_events: AtomicU64::new(0),
            access_dropped: AtomicU64::new(0),
            fault_plan: cfg.fault_plan,
            limits: cfg.limits,
            max_conns: cfg.max_conns.max(1),
        });

        let pool = Arc::new(runtime::WorkerPool::new(cfg.threads.max(1)));

        // Prefer the event driver; fall back to blocking when no
        // poller backend exists (non-Linux targets).
        let mut driver = cfg.driver;
        let mut event_parts = None;
        if driver == DriverKind::Event {
            match (Poller::new(), Waker::new()) {
                (Ok(poller), Ok((waker, reader))) => {
                    event_parts = Some((poller, Arc::new(waker), reader));
                }
                _ => driver = DriverKind::Blocking,
            }
        }

        if let Some(log) = &shared.log {
            // First enqueue into a fresh queue: cannot be full, and the
            // FIFO writer guarantees the manifest stays line one.
            log.emit(
                Json::obj()
                    .field("type", "manifest")
                    .field("kind", "access-log")
                    .field("addr", addr.to_string())
                    .field("ranker", shared.app.system().ranker_name())
                    .field("threads", cfg.threads.max(1))
                    .field("shards", shared.app.n_shards())
                    .field("max_conns", shared.max_conns)
                    .field("driver", driver.name()),
            );
        }

        let (driver_thread, waker) = match event_parts {
            Some((poller, waker, reader)) => {
                let event_loop = EventLoop::new(
                    listener,
                    poller,
                    Arc::clone(&waker),
                    reader,
                    Arc::clone(&shared),
                    Arc::clone(&pool),
                );
                let handle = std::thread::Builder::new()
                    .name("serve-loop".into())
                    .spawn(move || event_loop.run())?;
                (handle, Some(waker))
            }
            None => {
                let accept_shared = Arc::clone(&shared);
                let accept_pool = Arc::clone(&pool);
                let handle = std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || blocking_accept_loop(listener, accept_shared, accept_pool))?;
                (handle, None)
            }
        };

        Ok(Self {
            addr,
            shared,
            driver_thread: Some(driver_thread),
            pool: Some(pool),
            waker,
            driver,
        })
    }

    /// The bound address — with `port: 0`, the OS-assigned one.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The generation currently being served.
    pub fn generation(&self) -> u64 {
        self.shared.app.generation()
    }

    /// The driver actually running (the event driver may have fallen
    /// back to blocking on targets without a poller).
    pub fn driver(&self) -> DriverKind {
        self.driver
    }

    /// The app behind this server. Wire-side experiments read the
    /// defense verdict ledger off it after driving traffic through
    /// the socket.
    pub fn app(&self) -> &RecApp {
        &self.shared.app
    }

    /// Connections currently registered with the driver. Benchmarks
    /// use this to wait out a teardown storm after dropping a client
    /// fleet before taking latency measurements.
    pub fn active_connections(&self) -> usize {
        self.shared.active_connections.load(Ordering::SeqCst)
    }

    /// Stops accepting, waits for every in-flight request to drain,
    /// and reports the request/response ledger. Idempotent via Drop.
    pub fn shutdown(mut self) -> ShutdownStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ShutdownStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(waker) = &self.waker {
            runtime::Wake::wake(&**waker);
        }
        if let Some(handle) = self.driver_thread.take() {
            let _ = handle.join();
        }
        // Blocking driver: every connection task decrements on exit.
        while self.shared.active_connections.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Dropping the pool joins its workers (queue is drained first).
        self.pool = None;
        let stats = ShutdownStats {
            accepted: self.shared.requests_accepted.load(Ordering::SeqCst),
            completed: self.shared.responses_completed.load(Ordering::SeqCst),
        };
        // Drain the access-log queue to disk, then append the
        // drop-accounting summary as the guaranteed-last line:
        // events + dropped == completed (parse-error lines, method
        // "?", sit outside the ledger and this accounting).
        if let Some(log) = &self.shared.log {
            if let Some(sink) = log.close() {
                let _ = sink.emit(
                    &Json::obj()
                        .field("type", "access-summary")
                        .field("events", self.shared.access_events.load(Ordering::SeqCst))
                        .field("dropped", self.shared.access_dropped.load(Ordering::SeqCst))
                        .field("completed", stats.completed),
                );
            }
        }
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.pool.is_some() {
            self.shutdown_inner();
        }
    }
}

// ---------------------------------------------------------------------------
// Event driver
// ---------------------------------------------------------------------------

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How long a half-received request may keep a draining connection
/// alive (both drivers), bounding shutdown latency against clients
/// that stall mid-request.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// An offloaded handler's finished response, sent back to the loop.
struct Completion {
    token: u64,
    status: u16,
    content_type: &'static str,
    body: String,
    generation: u64,
    shard: u64,
    method: String,
    path: String,
    micros: u64,
    lag_micros: u64,
    feedback: Option<FeedbackOutcome>,
}

struct ConnEntry {
    stream: TcpStream,
    machine: Connection,
    interest: Interest,
    /// Peer half-closed its write side; serve what's queued, then go.
    eof: bool,
    /// Last byte-level progress, for the shutdown drain grace.
    last_progress: Instant,
}

struct EventLoop {
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    waker_reader: std::io::PipeReader,
    shared: Arc<Shared>,
    pool: Arc<runtime::WorkerPool>,
    conns: HashMap<u64, ConnEntry>,
    next_token: u64,
    tx: Sender<Completion>,
    rx: Receiver<Completion>,
    accepting: bool,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        poller: Poller,
        waker: Arc<Waker>,
        waker_reader: std::io::PipeReader,
        shared: Arc<Shared>,
        pool: Arc<runtime::WorkerPool>,
    ) -> Self {
        let (tx, rx) = std::sync::mpsc::channel();
        Self {
            listener,
            poller,
            waker,
            waker_reader,
            shared,
            pool,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            tx,
            rx,
            accepting: true,
        }
    }

    fn run(mut self) {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            if self
                .poller
                .register(self.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                .is_err()
                || self
                    .poller
                    .register(self.waker_reader.as_raw_fd(), WAKER_TOKEN, Interest::READ)
                    .is_err()
            {
                return;
            }
        }
        let mut events = Vec::new();
        loop {
            let draining = self.shared.shutdown.load(Ordering::SeqCst);
            let timeout = if draining {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(200)
            };
            events.clear();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                return;
            }
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.drain_waker(),
                    token => self.conn_ready(token, event),
                }
            }
            self.drain_completions();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.drive_drain();
                if self.conns.is_empty() {
                    return;
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            if !self.accepting {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.shared.max_conns {
                        // Over the ceiling: hang up at the door.
                        telemetry::metrics::counter("serve_conns_rejected_total").inc();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    #[cfg(unix)]
                    {
                        use std::os::fd::AsRawFd;
                        if self
                            .poller
                            .register(stream.as_raw_fd(), token, Interest::READ)
                            .is_err()
                        {
                            continue;
                        }
                    }
                    telemetry::metrics::gauge("serve_active_connections").add(1);
                    self.conns.insert(
                        token,
                        ConnEntry {
                            stream,
                            machine: Connection::new(self.shared.limits),
                            interest: Interest::READ,
                            eof: false,
                            last_progress: Instant::now(),
                        },
                    );
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn drain_waker(&mut self) {
        // Clear the coalescing flag first: a wake racing this drain
        // writes a fresh byte and the next `wait` returns immediately.
        self.waker.begin_drain();
        let mut buf = [0u8; 64];
        while matches!((&self.waker_reader).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn conn_ready(&mut self, token: u64, event: poll::Event) {
        if !self.conns.contains_key(&token) {
            return; // torn down earlier in this batch
        }
        if event.readable && !self.read_conn(token) {
            self.teardown(token);
            return;
        }
        self.service_conn(token);
        self.flush_and_maybe_close(token);
    }

    /// Reads everything currently available; false = tear down now.
    fn read_conn(&mut self, token: u64) -> bool {
        let entry = self.conns.get_mut(&token).expect("checked by caller");
        if entry.machine.is_closing() || entry.eof {
            return true;
        }
        let mut buf = [0u8; 8192];
        loop {
            match entry.stream.read(&mut buf) {
                Ok(0) => {
                    entry.eof = true;
                    // Nothing queued and nothing mid-parse: plain close.
                    return !entry.machine.is_idle();
                }
                Ok(n) => {
                    entry.last_progress = Instant::now();
                    let outcome = entry.machine.feed(&buf[..n]);
                    if outcome.accepted > 0 {
                        self.shared
                            .requests_accepted
                            .fetch_add(outcome.accepted as u64, Ordering::SeqCst);
                    }
                    if outcome.error.is_some() {
                        return true; // answered via take_due_error
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => return true,
                Err(_) => return false,
            }
        }
    }

    /// Dispatches every ready request: fast routes inline, slow ones
    /// to the worker set (at most one in flight per connection — the
    /// machine enforces response ordering).
    fn service_conn(&mut self, token: u64) {
        loop {
            let Some(entry) = self.conns.get_mut(&token) else {
                return;
            };
            if let Some(err) = entry.machine.take_due_error() {
                let body = Json::obj().field("error", err.reason().to_string());
                entry
                    .machine
                    .push_error_response(err.status(), &body.render());
                log_access(
                    &self.shared,
                    token,
                    "?",
                    "?",
                    err.status(),
                    self.shared.app.generation(),
                    0,
                    0,
                    0,
                    None,
                );
                return;
            }
            if !entry.machine.has_ready_request() {
                return;
            }
            let inbound = entry.machine.take_request().expect("ready");
            let lag_micros = inbound.parsed_at.elapsed().as_micros() as u64;
            loop_lag_micros().record(lag_micros as f64);
            let req = inbound.request;
            let route = Route::parse(&req.method, &req.path, &req.query);
            let fast = route.as_ref().map_or(true, Route::is_fast);
            if fast {
                let timer = Instant::now();
                let resp = self.shared.compute(&route, &req.body);
                let micros = timer.elapsed().as_micros() as u64;
                let force_close = self.shared.shutdown.load(Ordering::SeqCst);
                let entry = self.conns.get_mut(&token).expect("still present");
                entry.machine.push_response_with(
                    resp.status,
                    resp.content_type,
                    &resp.render_body(),
                    force_close,
                );
                log_access(
                    &self.shared,
                    token,
                    &req.method,
                    &req.path,
                    resp.status,
                    resp.generation,
                    resp.shard,
                    micros,
                    lag_micros,
                    resp.feedback,
                );
                continue; // next pipelined request
            }
            // Slow route: offload; the completion wakes the poller.
            let shared = Arc::clone(&self.shared);
            let tx = self.tx.clone();
            let waker: Arc<dyn runtime::Wake> = Arc::clone(&self.waker) as _;
            self.pool.spawn_waking(
                move || {
                    let timer = Instant::now();
                    let resp = shared.compute(&route, &req.body);
                    let _ = tx.send(Completion {
                        token,
                        status: resp.status,
                        content_type: resp.content_type,
                        body: resp.render_body(),
                        generation: resp.generation,
                        shard: resp.shard,
                        method: req.method,
                        path: req.path,
                        micros: timer.elapsed().as_micros() as u64,
                        lag_micros,
                        feedback: resp.feedback,
                    });
                },
                waker,
            );
            return; // the machine blocks further takes until completion
        }
    }

    fn drain_completions(&mut self) {
        while let Ok(done) = self.rx.try_recv() {
            let Some(entry) = self.conns.get_mut(&done.token) else {
                continue; // peer vanished while the handler ran
            };
            let force_close = self.shared.shutdown.load(Ordering::SeqCst);
            entry.machine.push_response_with(
                done.status,
                done.content_type,
                &done.body,
                force_close,
            );
            log_access(
                &self.shared,
                done.token,
                &done.method,
                &done.path,
                done.status,
                done.generation,
                done.shard,
                done.micros,
                done.lag_micros,
                done.feedback,
            );
            let token = done.token;
            self.service_conn(token);
            self.flush_and_maybe_close(token);
        }
    }

    /// Writes pending output, adjusts write interest, and closes the
    /// connection when its machine says so.
    fn flush_and_maybe_close(&mut self, token: u64) {
        let Some(entry) = self.conns.get_mut(&token) else {
            return;
        };
        while entry.machine.wants_write() {
            match entry.stream.write(entry.machine.pending_output()) {
                Ok(0) => {
                    self.teardown(token);
                    return;
                }
                Ok(n) => {
                    entry.last_progress = Instant::now();
                    let completed = entry.machine.advance_write(n);
                    if completed > 0 {
                        self.shared
                            .responses_completed
                            .fetch_add(completed, Ordering::SeqCst);
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.teardown(token);
                    return;
                }
            }
        }
        let want = if entry.machine.wants_write() {
            Interest::READ_WRITE
        } else {
            Interest::READ
        };
        if want != entry.interest {
            entry.interest = want;
            #[cfg(unix)]
            {
                use std::os::fd::AsRawFd;
                let _ = self
                    .poller
                    .reregister(entry.stream.as_raw_fd(), token, want);
            }
        }
        let machine = &self.conns[&token].machine;
        let done = machine.should_close_now()
            || (self.conns[&token].eof && !machine.in_flight() && !machine.wants_write());
        if done {
            self.teardown(token);
        }
    }

    /// One shutdown sweep: stop accepting, retire idle connections,
    /// cut off stalled half-requests after the grace period.
    fn drive_drain(&mut self) {
        if self.accepting {
            self.accepting = false;
            #[cfg(unix)]
            {
                use std::os::fd::AsRawFd;
                let _ = self.poller.deregister(self.listener.as_raw_fd());
            }
        }
        let now = Instant::now();
        let doomed: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, entry)| {
                entry.machine.is_idle()
                    || (entry.machine.buffered_partial() > 0
                        && !entry.machine.in_flight()
                        && now.duration_since(entry.last_progress) > DRAIN_GRACE)
            })
            .map(|(&token, _)| token)
            .collect();
        for token in doomed {
            self.teardown(token);
        }
    }

    fn teardown(&mut self, token: u64) {
        if let Some(entry) = self.conns.remove(&token) {
            #[cfg(unix)]
            {
                use std::os::fd::AsRawFd;
                let _ = self.poller.deregister(entry.stream.as_raw_fd());
            }
            telemetry::metrics::gauge("serve_active_connections").add(-1);
        }
    }
}

// ---------------------------------------------------------------------------
// Blocking driver
// ---------------------------------------------------------------------------

fn blocking_accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    pool: Arc<runtime::WorkerPool>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.active_connections.load(Ordering::SeqCst) >= shared.max_conns {
                    telemetry::metrics::counter("serve_conns_rejected_total").inc();
                    drop(stream);
                    continue;
                }
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                telemetry::metrics::gauge("serve_active_connections").add(1);
                let conn_shared = Arc::clone(&shared);
                pool.spawn(move || {
                    let conn = conn_shared.connection_ids.fetch_add(1, Ordering::Relaxed);
                    handle_connection_blocking(stream, &conn_shared, conn);
                    conn_shared
                        .active_connections
                        .fetch_sub(1, Ordering::SeqCst);
                    telemetry::metrics::gauge("serve_active_connections").add(-1);
                });
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Drives one connection's [`Connection`] machine over a blocking
/// socket with a 20 ms read timeout — the same machine the event loop
/// drives, fed and flushed sequentially.
fn handle_connection_blocking(stream: TcpStream, shared: &Shared, conn: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut stream = stream;
    let mut machine = Connection::new(shared.limits);
    let mut read_buf = [0u8; 8192];
    let mut eof = false;
    let mut stalled_since: Option<Instant> = None;

    loop {
        // Serve everything already parsed (pipelining) first.
        loop {
            if let Some(err) = machine.take_due_error() {
                let body = Json::obj().field("error", err.reason().to_string());
                machine.push_error_response(err.status(), &body.render());
                log_access(
                    shared,
                    conn,
                    "?",
                    "?",
                    err.status(),
                    shared.app.generation(),
                    0,
                    0,
                    0,
                    None,
                );
                break;
            }
            let Some(inbound) = machine.take_request() else {
                break;
            };
            let lag_micros = inbound.parsed_at.elapsed().as_micros() as u64;
            let req = inbound.request;
            let route = Route::parse(&req.method, &req.path, &req.query);
            let timer = Instant::now();
            let resp = shared.compute(&route, &req.body);
            let micros = timer.elapsed().as_micros() as u64;
            let force_close = shared.shutdown.load(Ordering::SeqCst);
            machine.push_response_with(
                resp.status,
                resp.content_type,
                &resp.render_body(),
                force_close,
            );
            log_access(
                shared,
                conn,
                &req.method,
                &req.path,
                resp.status,
                resp.generation,
                resp.shard,
                micros,
                lag_micros,
                resp.feedback,
            );
        }

        // Flush: blocking write, so this drains fully or fails.
        while machine.wants_write() {
            match stream.write(machine.pending_output()) {
                Ok(0) => return,
                Ok(n) => {
                    let completed = machine.advance_write(n);
                    if completed > 0 {
                        shared
                            .responses_completed
                            .fetch_add(completed, Ordering::SeqCst);
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => {}
                Err(_) => return,
            }
        }
        if machine.should_close_now() {
            return;
        }
        if eof && !machine.in_flight() {
            return;
        }

        match stream.read(&mut read_buf) {
            Ok(0) => {
                if machine.is_idle() {
                    return;
                }
                eof = true;
            }
            Ok(n) => {
                stalled_since = None;
                let outcome = machine.feed(&read_buf[..n]);
                if outcome.accepted > 0 {
                    shared
                        .requests_accepted
                        .fetch_add(outcome.accepted as u64, Ordering::SeqCst);
                }
            }
            Err(err)
                if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    if machine.is_idle() {
                        return;
                    }
                    // A request is mid-flight: grant a bounded grace.
                    if machine.buffered_partial() > 0 {
                        let since = *stalled_since.get_or_insert_with(Instant::now);
                        if since.elapsed() > DRAIN_GRACE {
                            return;
                        }
                    }
                }
            }
            Err(_) => return,
        }
    }
}
