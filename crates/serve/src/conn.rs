//! The sans-io per-connection state machine (DESIGN.md §5f).
//!
//! [`Connection`] owns everything one client connection carries that
//! is *not* a socket: the incremental [`RequestParser`], the inbox of
//! fully-parsed requests awaiting dispatch, the write buffer with its
//! per-response boundaries (so the completed-response ledger can be
//! advanced exactly when a response's last byte reaches the kernel),
//! and the keep-alive/close policy. It never performs I/O — callers
//! feed it bytes read off a transport and drain bytes to write back —
//! so the readiness-driven event loop and the blocking fallback driver
//! share this machine **verbatim**: there is one implementation of
//! pipelining, response ordering, parse-error poisoning, and close
//! semantics, and the drivers differ only in how bytes move.
//!
//! ## Dispatch discipline
//!
//! [`Connection::take_request`] hands out at most one request at a
//! time: while a taken request's response has not been pushed back via
//! [`Connection::push_response`], further takes return `None`. That
//! single rule is what keeps pipelined responses in request order even
//! when a slow request is offloaded to a worker — the next pipelined
//! request simply waits in the inbox.
//!
//! ## Parse errors
//!
//! A parse error *poisons* the connection (framing past a rejected
//! head is unknowable) but does not jump the queue: requests parsed
//! before the bad bytes are still served, and
//! [`Connection::take_due_error`] releases the error exactly once,
//! after the inbox has drained and no request is in flight. The error
//! response closes the connection; it is **not** counted as a
//! completed request (it was never an accepted one).

use std::collections::VecDeque;
use std::time::Instant;

use crate::http::{self, HttpError, Limits, Request, RequestParser};

/// One parsed request plus the instant it left the parser — the gap to
/// dispatch is the event-loop lag the access log reports.
#[derive(Debug)]
pub struct Inbound {
    pub request: Request,
    pub parsed_at: Instant,
}

/// What one [`Connection::feed`] call produced.
#[derive(Debug)]
pub struct FeedOutcome {
    /// Requests fully parsed off the fed bytes (the accepted ledger).
    pub accepted: usize,
    /// Set when the fed bytes poisoned the parser. The error is *also*
    /// held internally and released by [`Connection::take_due_error`]
    /// once it is this connection's turn to answer it.
    pub error: Option<HttpError>,
}

pub struct Connection {
    parser: RequestParser,
    inbox: VecDeque<Inbound>,
    /// Bytes not yet written to the transport; `cursor` marks how far
    /// the transport has progressed through them.
    outbox: Vec<u8>,
    cursor: usize,
    /// End offsets (in `outbox` coordinates) of ledger-counted
    /// responses; popped as `advance_write` crosses them.
    response_ends: VecDeque<usize>,
    /// A request's response has been taken but not yet pushed.
    in_flight: bool,
    /// The in-flight request asked for `Connection: close`.
    close_after_response: bool,
    /// No further bytes will be read or responses queued once the
    /// outbox drains.
    closing: bool,
    /// Parser hit an error; held until released once, in turn.
    pending_error: Option<HttpError>,
    error_released: bool,
}

impl Connection {
    pub fn new(limits: Limits) -> Self {
        Self {
            parser: RequestParser::new(limits),
            inbox: VecDeque::new(),
            outbox: Vec::new(),
            cursor: 0,
            response_ends: VecDeque::new(),
            in_flight: false,
            close_after_response: false,
            closing: false,
            pending_error: None,
            error_released: false,
        }
    }

    /// Feeds transport bytes through the parser, moving every complete
    /// request into the inbox. Bytes after a poisoning error are
    /// discarded (framing is untrustworthy).
    pub fn feed(&mut self, bytes: &[u8]) -> FeedOutcome {
        if self.pending_error.is_some() || self.closing {
            return FeedOutcome {
                accepted: 0,
                error: None,
            };
        }
        self.parser.push(bytes);
        let mut accepted = 0;
        loop {
            match self.parser.next_request() {
                Ok(Some(request)) => {
                    accepted += 1;
                    self.inbox.push_back(Inbound {
                        request,
                        parsed_at: Instant::now(),
                    });
                }
                Ok(None) => {
                    return FeedOutcome {
                        accepted,
                        error: None,
                    }
                }
                Err(err) => {
                    self.pending_error = Some(err.clone());
                    return FeedOutcome {
                        accepted,
                        error: Some(err),
                    };
                }
            }
        }
    }

    /// True when a request can be taken right now.
    pub fn has_ready_request(&self) -> bool {
        !self.in_flight && !self.inbox.is_empty()
    }

    /// Pops the next request, if none is already in flight. The
    /// caller owes exactly one [`Connection::push_response`] per take.
    pub fn take_request(&mut self) -> Option<Inbound> {
        if self.in_flight {
            return None;
        }
        let inbound = self.inbox.pop_front()?;
        self.in_flight = true;
        self.close_after_response = !inbound.request.keep_alive;
        Some(inbound)
    }

    /// A taken request is awaiting its response.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// Queues the response to the in-flight request. The rendered
    /// response closes the connection when the request asked for it
    /// (`Connection: close`) or the caller forces it (shutdown).
    pub fn push_response(&mut self, status: u16, body: &str, force_close: bool) {
        self.push_response_with(status, "application/json", body, force_close);
    }

    /// [`Connection::push_response`] with an explicit content type
    /// (the Prometheus exposition of `/metrics` is `text/plain`).
    pub fn push_response_with(
        &mut self,
        status: u16,
        content_type: &str,
        body: &str,
        force_close: bool,
    ) {
        debug_assert!(self.in_flight, "response without a taken request");
        let close = force_close || self.close_after_response;
        self.outbox.extend_from_slice(&http::render_response_with(
            status,
            content_type,
            body,
            close,
        ));
        self.response_ends.push_back(self.outbox.len());
        self.in_flight = false;
        self.close_after_response = false;
        if close {
            self.closing = true;
        }
    }

    /// Releases the held parse error exactly once, only after every
    /// earlier request has been answered. The caller must respond with
    /// [`Connection::push_error_response`].
    pub fn take_due_error(&mut self) -> Option<HttpError> {
        if self.error_released || self.in_flight || !self.inbox.is_empty() {
            return None;
        }
        let err = self.pending_error.clone()?;
        self.error_released = true;
        Some(err)
    }

    /// Queues the answer to a released parse error. Always closes; not
    /// counted as a completed response (it was never accepted).
    pub fn push_error_response(&mut self, status: u16, body: &str) {
        self.outbox
            .extend_from_slice(&http::render_response(status, body, true));
        self.closing = true;
    }

    /// Bytes the transport should write next.
    pub fn pending_output(&self) -> &[u8] {
        &self.outbox[self.cursor..]
    }

    pub fn wants_write(&self) -> bool {
        self.cursor < self.outbox.len()
    }

    /// Records that the transport wrote `n` bytes of
    /// [`Connection::pending_output`]; returns how many ledger-counted
    /// responses those bytes completed.
    pub fn advance_write(&mut self, n: usize) -> u64 {
        self.cursor += n;
        debug_assert!(self.cursor <= self.outbox.len());
        let mut completed = 0;
        while self
            .response_ends
            .front()
            .is_some_and(|&end| end <= self.cursor)
        {
            self.response_ends.pop_front();
            completed += 1;
        }
        if self.cursor == self.outbox.len() {
            self.outbox.clear();
            self.cursor = 0;
        }
        completed
    }

    /// Marks the connection for close once the outbox drains (used by
    /// shutdown to retire idle keep-alive connections).
    pub fn begin_close(&mut self) {
        self.closing = true;
    }

    /// No further requests will be accepted on this connection.
    pub fn is_closing(&self) -> bool {
        self.closing
    }

    /// Everything queued has been written and the connection is
    /// closing: the transport should be shut now.
    pub fn should_close_now(&self) -> bool {
        self.closing && !self.wants_write() && !self.in_flight
    }

    /// Nothing is buffered, parsed, in flight, or pending — a pure
    /// idle keep-alive connection (free to close at shutdown).
    pub fn is_idle(&self) -> bool {
        !self.in_flight
            && self.inbox.is_empty()
            && !self.wants_write()
            && self.parser.buffered() == 0
            && self.pending_error.is_none()
    }

    /// Bytes of a partially-received request sitting in the parser.
    pub fn buffered_partial(&self) -> usize {
        self.parser.buffered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> Connection {
        Connection::new(Limits::default())
    }

    #[test]
    fn feed_take_respond_write_round_trip() {
        let mut c = conn();
        let out = c.feed(b"GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(out.accepted, 1);
        assert!(out.error.is_none());
        let inbound = c.take_request().expect("request ready");
        assert_eq!(inbound.request.path, "/healthz");
        assert!(c.in_flight());
        assert!(c.take_request().is_none(), "one at a time");
        c.push_response(200, "{}", false);
        assert!(!c.in_flight());
        assert!(c.wants_write());
        let n = c.pending_output().len();
        assert_eq!(c.advance_write(n), 1);
        assert!(!c.wants_write());
        assert!(c.is_idle());
        assert!(!c.should_close_now());
    }

    #[test]
    fn pipelined_requests_stay_ordered_behind_in_flight() {
        let mut c = conn();
        let out = c.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(out.accepted, 2);
        let first = c.take_request().unwrap();
        assert_eq!(first.request.path, "/a");
        // Second request waits for the first response.
        assert!(!c.has_ready_request());
        c.push_response(200, "a", false);
        let second = c.take_request().unwrap();
        assert_eq!(second.request.path, "/b");
    }

    #[test]
    fn partial_writes_complete_responses_only_at_their_boundary() {
        let mut c = conn();
        c.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        c.take_request().unwrap();
        c.push_response(200, "first", false);
        c.take_request().unwrap();
        c.push_response(200, "second", false);
        let total = c.pending_output().len();
        // Drip the bytes out one at a time; exactly two completions.
        let mut completed = 0;
        for _ in 0..total {
            completed += c.advance_write(1);
        }
        assert_eq!(completed, 2);
        assert!(c.is_idle());
    }

    #[test]
    fn connection_close_request_closes_after_flush() {
        let mut c = conn();
        c.feed(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        c.take_request().unwrap();
        c.push_response(200, "{}", false);
        assert!(c.is_closing());
        assert!(!c.should_close_now(), "response still queued");
        let rendered = String::from_utf8(c.pending_output().to_vec()).unwrap();
        assert!(rendered.contains("Connection: close"));
        let n = c.pending_output().len();
        c.advance_write(n);
        assert!(c.should_close_now());
    }

    #[test]
    fn parse_error_waits_its_turn_and_is_released_once() {
        let mut c = conn();
        let out = c.feed(b"GET /ok HTTP/1.1\r\n\r\nBAD lower HTTP/1.1\r\n\r\n");
        assert_eq!(out.accepted, 1);
        assert!(out.error.is_some());
        // The good request goes first; the error waits.
        assert!(c.take_due_error().is_none());
        c.take_request().unwrap();
        assert!(c.take_due_error().is_none(), "in flight blocks the error");
        c.push_response(200, "{}", false);
        let err = c.take_due_error().expect("error is due now");
        assert_eq!(err.status(), 400);
        assert!(c.take_due_error().is_none(), "released exactly once");
        c.push_error_response(err.status(), "{\"error\":\"bad\"}");
        assert!(c.is_closing());
        // Error responses are not ledger-counted.
        let n = c.pending_output().len();
        let completed_before_error = {
            let mut fresh = conn();
            fresh.feed(b"GET /ok HTTP/1.1\r\n\r\n");
            fresh.take_request().unwrap();
            fresh.push_response(200, "{}", false);
            let m = fresh.pending_output().len();
            fresh.advance_write(m)
        };
        assert_eq!(completed_before_error, 1);
        assert_eq!(c.advance_write(n), 1, "only the good response counts");
        assert!(c.should_close_now());
    }

    #[test]
    fn bytes_after_poison_are_discarded() {
        let mut c = conn();
        c.feed(b"BAD lower HTTP/1.1\r\n\r\n");
        let out = c.feed(b"GET /late HTTP/1.1\r\n\r\n");
        assert_eq!(out.accepted, 0);
        assert!(!c.has_ready_request());
    }

    #[test]
    fn begin_close_drains_then_closes() {
        let mut c = conn();
        c.feed(b"GET /x HTTP/1.1\r\n\r\n");
        c.take_request().unwrap();
        c.push_response(200, "{}", false);
        c.begin_close();
        assert!(!c.should_close_now());
        let n = c.pending_output().len();
        c.advance_write(n);
        assert!(c.should_close_now());
        // Closed connections ignore late bytes.
        assert_eq!(c.feed(b"GET /y HTTP/1.1\r\n\r\n").accepted, 0);
    }

    #[test]
    fn split_request_feeds_park_until_complete() {
        let mut c = conn();
        let raw = b"POST /feedback HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        for chunk in raw.chunks(3) {
            c.feed(chunk);
        }
        let inbound = c.take_request().expect("assembled across feeds");
        assert_eq!(inbound.request.body, b"abcd");
        assert_eq!(c.buffered_partial(), 0);
    }
}
