//! `obs_top`: a terminal top-style viewer for a served instance's
//! live-metrics plane.
//!
//! ```text
//! obs_top --addr 127.0.0.1:8080 --interval-ms 1000
//! obs_top --addr 127.0.0.1:8080 --scrape prom --iters 1 --no-clear > scrape.prom
//! ```
//!
//! Polls `GET /metrics` and renders a refreshing table: windowed
//! rates, windowed latency quantiles, per-label family breakdown
//! (route/status/shard), drift-detector state, and the cumulative
//! registry underneath. `--scrape prom` switches to raw Prometheus
//! text exposition pass-through — that mode is what `scripts/ci.sh`
//! uses to capture scrape files for `validate_prom`.
//!
//! Exits non-zero if a scrape fails or the server answers non-200;
//! with `--iters N` it stops after N scrapes (0 = run until killed).

use std::process::ExitCode;
use std::time::Duration;

use recsys::remote::HttpClient;
use telemetry::json::Json;

#[derive(Clone, Copy, PartialEq, Eq)]
enum ScrapeFormat {
    Json,
    Prom,
}

struct Args {
    addr: String,
    interval: Duration,
    iters: u64,
    window: Option<u32>,
    scrape: ScrapeFormat,
    clear: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: String::new(),
            interval: Duration::from_millis(1000),
            iters: 0,
            window: None,
            scrape: ScrapeFormat::Json,
            clear: true,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_top --addr HOST:PORT [--interval-ms N] [--iters N]\n\
         \x20              [--window SECS] [--scrape json|prom] [--no-clear]\n\
         polls GET /metrics and renders a refreshing table (json) or the\n\
         raw Prometheus exposition (prom); --iters 0 runs until killed"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--interval-ms" => {
                args.interval = Duration::from_millis(
                    value("--interval-ms").parse().unwrap_or_else(|_| usage()),
                )
            }
            "--iters" => args.iters = value("--iters").parse().unwrap_or_else(|_| usage()),
            "--window" => {
                let secs: u32 = value("--window").parse().unwrap_or_else(|_| usage());
                if secs == 0 {
                    usage();
                }
                args.window = Some(secs);
            }
            "--scrape" => {
                args.scrape = match value("--scrape").as_str() {
                    "json" => ScrapeFormat::Json,
                    "prom" => ScrapeFormat::Prom,
                    other => {
                        eprintln!("unknown scrape format {other:?} (expected json|prom)");
                        usage()
                    }
                }
            }
            "--no-clear" => args.clear = false,
            _ => {
                eprintln!("unknown flag {flag:?}");
                usage();
            }
        }
    }
    if args.addr.is_empty() {
        eprintln!("--addr is required");
        usage();
    }
    args
}

fn metrics_path(args: &Args) -> String {
    let format = match args.scrape {
        ScrapeFormat::Json => "json",
        ScrapeFormat::Prom => "prom",
    };
    match args.window {
        Some(secs) => format!("/metrics?format={format}&window={secs}"),
        None => format!("/metrics?format={format}"),
    }
}

/// Compact significant-digit formatting: latencies live around 1e-4 s
/// and counts around 1e6, so one fixed precision fits neither.
fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 0.001 && v.abs() < 100_000.0 {
        let s = format!("{v:.4}");
        let trimmed = s.trim_end_matches('0').trim_end_matches('.');
        trimmed.to_string()
    } else {
        format!("{v:.3e}")
    }
}

fn get_f64(obj: &Json, field: &str) -> f64 {
    obj.get(field).and_then(Json::as_f64).unwrap_or(0.0)
}

fn render_table(doc: &Json, addr: &str, scrape_no: u64, iters: u64) -> String {
    let mut out = String::new();
    let push_row = |out: &mut String, cols: &[(&str, usize)]| {
        for (text, width) in cols {
            out.push_str(&format!("{text:<width$}  ", width = width));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };

    let progress = if iters == 0 {
        format!("{scrape_no}")
    } else {
        format!("{scrape_no}/{iters}")
    };
    out.push_str(&format!(
        "obs_top — live metrics @ {addr}  (scrape {progress})\n"
    ));

    let stream = doc.get("stream");
    if let Some(Json::Obj(entries)) = stream.and_then(|s| s.get("counters")) {
        if !entries.is_empty() {
            out.push_str("\nwindowed counters\n");
            push_row(
                &mut out,
                &[("  name", 36), ("count", 10), ("rate/s", 10), ("stale", 6)],
            );
            for (name, v) in entries {
                push_row(
                    &mut out,
                    &[
                        (&format!("  {name}"), 36),
                        (&fmt_num(get_f64(v, "count")), 10),
                        (&fmt_num(get_f64(v, "rate")), 10),
                        (&fmt_num(get_f64(v, "stale_records")), 6),
                    ],
                );
            }
        }
    }

    if let Some(Json::Obj(entries)) = stream.and_then(|s| s.get("histograms")) {
        if !entries.is_empty() {
            out.push_str("\nwindowed histograms\n");
            push_row(
                &mut out,
                &[
                    ("  name", 36),
                    ("count", 10),
                    ("rate/s", 10),
                    ("p50", 10),
                    ("p95", 10),
                    ("p99", 10),
                ],
            );
            for (name, v) in entries {
                push_row(
                    &mut out,
                    &[
                        (&format!("  {name}"), 36),
                        (&fmt_num(get_f64(v, "count")), 10),
                        (&fmt_num(get_f64(v, "rate")), 10),
                        (&fmt_num(get_f64(v, "p50")), 10),
                        (&fmt_num(get_f64(v, "p95")), 10),
                        (&fmt_num(get_f64(v, "p99")), 10),
                    ],
                );
            }
        }
    }

    if let Some(Json::Obj(fams)) = stream.and_then(|s| s.get("families")) {
        for (name, fam) in fams {
            let Some(Json::Obj(series)) = fam.get("series") else {
                continue;
            };
            out.push_str(&format!("\n{name} (top series by windowed rate)\n"));
            let mut rows: Vec<(&String, f64, f64)> = series
                .iter()
                .map(|(label, v)| (label, get_f64(v, "total"), get_f64(v, "rate")))
                .collect();
            rows.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(b.0)));
            const TOP: usize = 12;
            push_row(&mut out, &[("  labels", 44), ("total", 10), ("rate/s", 10)]);
            for (label, total, rate) in rows.iter().take(TOP) {
                push_row(
                    &mut out,
                    &[
                        (&format!("  {{{label}}}"), 44),
                        (&fmt_num(*total), 10),
                        (&fmt_num(*rate), 10),
                    ],
                );
            }
            if rows.len() > TOP {
                out.push_str(&format!("  … (+{} more series)\n", rows.len() - TOP));
            }
            let overflow = get_f64(fam, "overflow_events");
            if overflow > 0.0 {
                out.push_str(&format!("  overflow_events={}\n", fmt_num(overflow)));
            }
        }
    }

    if let Some(Json::Obj(dets)) = stream.and_then(|s| s.get("detectors")) {
        if !dets.is_empty() {
            out.push_str("\ndrift detectors\n");
            push_row(
                &mut out,
                &[
                    ("  name", 36),
                    ("obs", 8),
                    ("mean", 10),
                    ("alarm", 8),
                    ("drift?", 6),
                ],
            );
            for (name, v) in dets {
                let drifted = v.get("drifted").and_then(Json::as_bool).unwrap_or(false);
                push_row(
                    &mut out,
                    &[
                        (&format!("  {name}"), 36),
                        (&fmt_num(get_f64(v, "observations")), 8),
                        (&fmt_num(get_f64(v, "mean")), 10),
                        (&fmt_num(get_f64(v, "alarms")), 8),
                        (if drifted { "DRIFT" } else { "-" }, 6),
                    ],
                );
            }
        }
    }

    if let Json::Obj(entries) = doc {
        let mut wrote_header = false;
        for (name, v) in entries {
            let rendered = match v {
                Json::U64(c) => format!("{c}"),
                Json::I64(g) => format!("{g}"),
                _ => continue, // cumulative histograms + the "stream" subtree
            };
            if !wrote_header {
                out.push_str("\ncumulative counters / gauges\n");
                wrote_header = true;
            }
            push_row(&mut out, &[(&format!("  {name}"), 44), (&rendered, 12)]);
        }
    }
    out
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut client = HttpClient::new(args.addr.clone()).with_read_timeout(Duration::from_secs(10));
    let path = metrics_path(&args);

    let mut scrape_no = 0u64;
    loop {
        scrape_no += 1;
        match args.scrape {
            ScrapeFormat::Prom => match client.request_text("GET", &path, None) {
                Ok((200, body)) => {
                    if args.clear {
                        print!("\x1b[2J\x1b[H");
                    }
                    print!("{body}");
                }
                Ok((status, body)) => {
                    eprintln!("scrape failed: server returned {status}: {body}");
                    return ExitCode::FAILURE;
                }
                Err(err) => {
                    eprintln!("scrape failed: {err}");
                    return ExitCode::FAILURE;
                }
            },
            ScrapeFormat::Json => match client.request("GET", &path, None) {
                Ok((200, doc)) => {
                    let frame = render_table(&doc, &args.addr, scrape_no, args.iters);
                    if args.clear {
                        print!("\x1b[2J\x1b[H");
                    }
                    print!("{frame}");
                }
                Ok((status, body)) => {
                    eprintln!("scrape failed: server returned {status}: {}", body.render());
                    return ExitCode::FAILURE;
                }
                Err(err) => {
                    eprintln!("scrape failed: {err}");
                    return ExitCode::FAILURE;
                }
            },
        }
        use std::io::Write;
        let _ = std::io::stdout().flush();
        if args.iters > 0 && scrape_no >= args.iters {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(args.interval);
    }
}
