//! The serving binary: stand up a recommendation server over one of
//! the paper's twin datasets and serve until stdin closes.
//!
//! ```text
//! serve --dataset Steam --scale 0.05 --ranker ItemPop --port 8080 \
//!       --threads 2 --access-log runs/access.jsonl \
//!       --defense repetition --defense-fpr 0.05
//! ```
//!
//! Prints one `{"type":"serving", "addr":...}` line to stdout once the
//! socket is bound (with `--port 0`, this is how scripts learn the
//! OS-assigned port), then blocks reading stdin. EOF or a `quit` line
//! triggers a graceful shutdown: accepting stops, every in-flight
//! request completes, and a final `{"type":"shutdown", ...}` ledger
//! line is printed. Exits non-zero iff any accepted request was
//! dropped — the invariant `scripts/ci.sh` pins.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;

use recsys::defense::{
    DefenseKind, DefenseStack, OnlineFilter, PopularityDeviationDetector, RepetitionDetector,
};
use recsys::rankers::RankerKind;
use recsys::system::{BlackBoxSystem, SystemConfig};
use serve::{RecApp, Server, ServerConfig};
use telemetry::json::Json;

struct Args {
    dataset: datasets::PaperDataset,
    scale: f64,
    seed: u64,
    ranker: RankerKind,
    eval_users: usize,
    reserve_attackers: u32,
    port: u16,
    threads: usize,
    shards: usize,
    max_conns: usize,
    driver: serve::DriverKind,
    access_log: Option<std::path::PathBuf>,
    defense: Option<String>,
    defense_fpr: f64,
    fault_ordinals: Vec<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            dataset: datasets::PaperDataset::Steam,
            scale: 0.05,
            seed: 42,
            ranker: RankerKind::ItemPop,
            eval_users: 50,
            reserve_attackers: 32,
            port: 0,
            threads: 2,
            shards: 1,
            max_conns: 10_000,
            driver: serve::DriverKind::Event,
            access_log: None,
            defense: None,
            defense_fpr: 0.05,
            fault_ordinals: Vec::new(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--dataset NAME] [--scale F] [--seed N] [--ranker NAME]\n\
         \x20            [--eval-users N] [--reserve-attackers N] [--port N] [--threads N]\n\
         \x20            [--shards N] [--max-conns N] [--driver event|blocking]\n\
         \x20            [--access-log FILE] [--defense-fpr F]\n\
         \x20            [--defense lof|reputation|adaptive|full|popularity|repetition]\n\
         \x20            [--fault-ordinals a,b,c]\n\
         serves until stdin reaches EOF (or a `quit` line), then drains and exits"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--dataset" => {
                let raw = value("--dataset");
                args.dataset = datasets::PaperDataset::parse(&raw).unwrap_or_else(|| {
                    eprintln!("unknown dataset {raw:?}");
                    usage()
                });
            }
            "--scale" => args.scale = value("--scale").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--ranker" => {
                let raw = value("--ranker");
                args.ranker = raw.parse().unwrap_or_else(|err| {
                    eprintln!("{err}");
                    usage()
                });
            }
            "--eval-users" => {
                args.eval_users = value("--eval-users").parse().unwrap_or_else(|_| usage())
            }
            "--reserve-attackers" => {
                args.reserve_attackers = value("--reserve-attackers")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--port" => args.port = value("--port").parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--max-conns" => {
                args.max_conns = value("--max-conns").parse().unwrap_or_else(|_| usage())
            }
            "--driver" => {
                args.driver = match value("--driver").as_str() {
                    "event" => serve::DriverKind::Event,
                    "blocking" => serve::DriverKind::Blocking,
                    other => {
                        eprintln!("unknown driver {other:?} (expected event|blocking)");
                        usage()
                    }
                }
            }
            "--access-log" => args.access_log = Some(value("--access-log").into()),
            "--defense" => args.defense = Some(value("--defense")),
            "--defense-fpr" => {
                args.defense_fpr = value("--defense-fpr").parse().unwrap_or_else(|_| usage())
            }
            "--fault-ordinals" => {
                args.fault_ordinals = value("--fault-ordinals")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            _ => {
                eprintln!("unknown flag {flag:?}");
                usage();
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    let data = args.dataset.generate_scaled(args.scale, args.seed);
    let view = recsys::data::LogView::clean(&data);
    let ranker = args.ranker.build(&view, args.reserve_attackers);
    // The layered kinds (lof/reputation/adaptive/full) build the full
    // DefenseStack; the legacy single-detector filters stay available
    // as detector-only stacks.
    let defense: Option<DefenseStack> = args.defense.as_deref().map(|name| match name {
        "popularity" => OnlineFilter::calibrate(
            Box::new(PopularityDeviationDetector::default()),
            &data,
            args.defense_fpr,
        )
        .into(),
        "repetition" => {
            OnlineFilter::calibrate(Box::new(RepetitionDetector), &data, args.defense_fpr).into()
        }
        other => match DefenseKind::parse(other) {
            Some(kind) => match DefenseStack::build(kind, &data, args.defense_fpr) {
                Some(stack) => stack,
                None => {
                    eprintln!("--defense none is the default; omit the flag instead");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!(
                    "unknown defense {other:?} \
                     (expected lof|reputation|adaptive|full|popularity|repetition)"
                );
                std::process::exit(2);
            }
        },
    });
    let system = BlackBoxSystem::build(
        data,
        ranker,
        SystemConfig {
            eval_users: args.eval_users,
            seed: args.seed,
            reserve_attackers: args.reserve_attackers,
            ..SystemConfig::default()
        },
    );

    let fault_plan = (!args.fault_ordinals.is_empty()).then(|| {
        let mut plan = runtime::FaultPlan::new();
        for ordinal in &args.fault_ordinals {
            plan = plan.panic_on_job(*ordinal);
        }
        Arc::new(plan)
    });

    let mut builder = ServerConfig::builder()
        .port(args.port)
        .threads(args.threads)
        .shards(args.shards)
        .max_conns(args.max_conns)
        .driver(args.driver);
    if let Some(path) = &args.access_log {
        builder = builder.access_log(path.clone());
    }
    if let Some(plan) = fault_plan {
        builder = builder.fault_plan(plan);
    }
    let cfg = builder.build().unwrap_or_else(|err| {
        eprintln!("bad server config: {err}");
        std::process::exit(2);
    });

    let server = Server::start(RecApp::new(system, defense), cfg).unwrap_or_else(|err| {
        eprintln!("cannot bind 127.0.0.1:{}: {err}", args.port);
        std::process::exit(1);
    });

    println!(
        "{}",
        Json::obj()
            .field("type", "serving")
            .field("addr", server.local_addr().to_string())
            .field("dataset", args.dataset.name())
            .field("ranker", args.ranker.name())
            .field("threads", args.threads)
            .field("shards", args.shards)
            .field("max_conns", args.max_conns)
            .field("driver", server.driver().name())
            .render()
    );

    // Serve until the operator (or the driving script) hangs up.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(text) if text.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    let stats = server.shutdown();
    println!(
        "{}",
        Json::obj()
            .field("type", "shutdown")
            .field("accepted", stats.accepted)
            .field("completed", stats.completed)
            .field("dropped", stats.dropped())
            .render()
    );
    if stats.dropped() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
