//! The recommendation application behind the socket: typed routing,
//! sharded published snapshots, the pending-feedback buffers, and
//! retrains.
//!
//! [`RecApp`] is transport-free — it maps parsed [`Route`]s to JSON
//! responses — so its semantics are unit-testable without a listener.
//!
//! ## Routing
//!
//! [`Route::parse`] is the **only** place 404/405/400 decisions are
//! made: it turns `(method, path, query)` into a typed [`Route`] or a
//! [`RouteError`] carrying the response status. [`RecApp::dispatch`]
//! then handles a `Route` without ever re-inspecting path strings —
//! which is what lets the event loop classify a request (fast/slow,
//! owning shard) before deciding where to run it.
//!
//! ## Concurrency model (DESIGN.md §5f)
//!
//! * **Reads never wait.** `/recommend`, `/healthz`, `/info` and
//!   `/metrics` touch only a [`runtime::ShardedPublished`] snapshot
//!   cell — a lock-free hazard-pointer read — plus immutable state.
//!   A user's cell is `shard_for_user(user, n_shards)`, so readers on
//!   different shards contend on different cache lines.
//! * **Feedback is buffered, not applied.** `POST /feedback` admits
//!   trajectories under one brief admission lock (budget check + a
//!   global arrival sequence), then spreads them across per-shard
//!   queues keyed by sequence number; only a retrain makes them
//!   visible.
//! * **Retrains happen off to the side.** `POST /retrain` drains every
//!   shard queue, merges by arrival sequence — reconstructing the
//!   exact single-queue order, which is why replayed attacks are
//!   bit-identical at *any* shard count — fine-tunes a fresh
//!   [`RankerSnapshot`] while the previous generation keeps serving,
//!   then publishes the same `Arc` into every shard cell, one atomic
//!   swap per cell. A `Mutex` serializes concurrent retrains (the
//!   seed stream is consumed per retrain), but no reader ever takes
//!   it.
//!
//! This mirrors the in-process [`BlackBoxSystem`] exactly: one
//! feedback-then-retrain round trip consumes one observation-seed
//! ordinal and produces the same model the in-process `observe` call
//! would have produced — the bit-identity the over-the-wire attack
//! path rests on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use recsys::data::Trajectory;
use recsys::defense::{DefenseStack, Verdict, VerdictCounts};
use recsys::shard::shard_for_user;
use recsys::snapshot::RankerSnapshot;
use recsys::system::BlackBoxSystem;
use runtime::ShardedPublished;
use telemetry::json::{self, Json};

use crate::http::Request;

/// Exposition format for `GET /metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The JSON snapshot (cumulative registry + `"stream"` sub-object).
    #[default]
    Json,
    /// Prometheus text exposition 0.0.4.
    Prom,
}

/// A parsed, typed request target. Everything downstream of parsing
/// dispatches on this — never on path strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    Healthz,
    Metrics {
        format: MetricsFormat,
        /// `?window=SECS` narrows the streaming views; `None` uses each
        /// instrument's full window.
        window: Option<u32>,
    },
    Info,
    Feedback,
    Retrain,
    Recommend {
        user: u32,
        /// `?k=` when given; `None` means the system's configured top-k.
        k: Option<usize>,
    },
}

/// A routing rejection: the status plus the message for the body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteError {
    pub status: u16,
    pub message: String,
}

impl RouteError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

/// `?k=` values past this are rejected as 400 (a list longer than any
/// catalog is a client bug, not a big ask).
const MAX_K: usize = 10_000;

impl Route {
    /// The single source of 404/405/400 decisions: an unknown path is
    /// 404, a known path with the wrong method 405, a malformed user
    /// id or `k` 400.
    pub fn parse(
        method: &str,
        path: &str,
        query: &[(String, String)],
    ) -> Result<Route, RouteError> {
        let route = match path {
            "/healthz" => Some(Route::Healthz),
            "/metrics" => Some(Route::parse_metrics(query)?),
            "/info" => Some(Route::Info),
            "/feedback" => Some(Route::Feedback),
            "/retrain" => Some(Route::Retrain),
            _ => None,
        };
        if let Some(route) = route {
            let allowed = match route {
                Route::Feedback | Route::Retrain => "POST",
                _ => "GET",
            };
            if method != allowed {
                return Err(RouteError::new(405, "method not allowed for this route"));
            }
            return Ok(route);
        }
        if let Some(user_str) = path.strip_prefix("/recommend/") {
            if method != "GET" {
                return Err(RouteError::new(405, "method not allowed for this route"));
            }
            let Ok(user) = user_str.parse::<u32>() else {
                return Err(RouteError::new(400, format!("bad user id {user_str:?}")));
            };
            let k = match query.iter().find(|(name, _)| name == "k") {
                None => None,
                Some((_, raw)) => match raw.parse::<usize>() {
                    Ok(k) if k <= MAX_K => Some(k),
                    _ => return Err(RouteError::new(400, format!("bad k {raw:?}"))),
                },
            };
            return Ok(Route::Recommend { user, k });
        }
        Err(RouteError::new(404, format!("no route for {path}")))
    }

    /// `/metrics` query handling: `?format=json|prom` (default json)
    /// and `?window=SECS` (positive whole seconds).
    fn parse_metrics(query: &[(String, String)]) -> Result<Route, RouteError> {
        let format = match query.iter().find(|(name, _)| name == "format") {
            None => MetricsFormat::Json,
            Some((_, raw)) => match raw.as_str() {
                "json" => MetricsFormat::Json,
                "prom" => MetricsFormat::Prom,
                _ => return Err(RouteError::new(400, format!("bad format {raw:?}"))),
            },
        };
        let window = match query.iter().find(|(name, _)| name == "window") {
            None => None,
            Some((_, raw)) => match raw.parse::<u32>() {
                Ok(secs) if secs > 0 => Some(secs),
                _ => return Err(RouteError::new(400, format!("bad window {raw:?}"))),
            },
        };
        Ok(Route::Metrics { format, window })
    }

    /// Fast routes are answered inline on the event loop (lock-free
    /// snapshot reads); slow ones are offloaded to the worker set.
    pub fn is_fast(&self) -> bool {
        !matches!(self, Route::Feedback | Route::Retrain)
    }

    /// Stable label value for the `serve_requests` metric family (one
    /// per variant — bounded cardinality by construction).
    pub fn label(&self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Metrics { .. } => "metrics",
            Route::Info => "info",
            Route::Feedback => "feedback",
            Route::Retrain => "retrain",
            Route::Recommend { .. } => "recommend",
        }
    }

    /// The shard whose snapshot cell answers this route, given the
    /// serving shard count. Non-recommend routes read shard 0.
    pub fn shard(&self, n_shards: usize) -> usize {
        match self {
            Route::Recommend { user, .. } => shard_for_user(*user, n_shards),
            _ => 0,
        }
    }
}

/// A routed response: status + JSON body, tagged with the snapshot
/// generation and owning shard that answered (for the access log).
///
/// Most responses are JSON; `raw` overrides the body with pre-rendered
/// text (the Prometheus exposition) under a non-JSON content type.
#[derive(Debug)]
pub struct AppResponse {
    pub status: u16,
    pub body: Json,
    /// Pre-rendered non-JSON body; when set, `body` is `Json::Null`.
    pub raw: Option<String>,
    pub content_type: &'static str,
    pub generation: u64,
    /// The shard whose snapshot cell served the response (0 for
    /// routes that are not per-user).
    pub shard: u64,
    /// Admission outcome of a judged `POST /feedback` (None for every
    /// other route and for feedback rejected before judging). Carried
    /// into the access log so defense decisions are auditable offline.
    pub feedback: Option<FeedbackOutcome>,
}

/// What the admission section decided about one feedback request,
/// snapshot under the admission lock (so `pending` and
/// `pending_before` bracket exactly this request's effect, even under
/// concurrent clients).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeedbackOutcome {
    /// Dominant verdict label: `"admit"` when everything offered was
    /// admitted, otherwise the most frequent rejection verdict
    /// (severity order `flag` > `rate_limit` > `throttle` on ties).
    pub verdict: &'static str,
    /// Judging detector (`"none"` when the server runs undefended).
    pub detector: &'static str,
    /// Trajectories offered in the request body.
    pub offered: u64,
    /// Trajectories actually enqueued (0 on a 409).
    pub accepted: u64,
    /// Total queued feedback across shards before this request.
    pub pending_before: u64,
    /// Total queued feedback across shards after this request; always
    /// `pending_before + accepted` — rejected feedback never
    /// increments a queue.
    pub pending: u64,
}

impl AppResponse {
    fn ok(body: Json, generation: u64, shard: u64) -> Self {
        Self {
            status: 200,
            body,
            raw: None,
            content_type: "application/json",
            generation,
            shard,
            feedback: None,
        }
    }

    fn text(content_type: &'static str, text: String, generation: u64) -> Self {
        Self {
            status: 200,
            body: Json::Null,
            raw: Some(text),
            content_type,
            generation,
            shard: 0,
            feedback: None,
        }
    }

    fn error(status: u16, message: impl Into<String>, generation: u64) -> Self {
        Self {
            status,
            body: Json::obj().field("error", message.into()),
            raw: None,
            content_type: "application/json",
            generation,
            shard: 0,
            feedback: None,
        }
    }

    /// The wire body: the raw text when set, the rendered JSON
    /// otherwise.
    pub fn render_body(&self) -> String {
        match &self.raw {
            Some(text) => text.clone(),
            None => self.body.render(),
        }
    }
}

/// The access-log label for a judged feedback request: `"admit"` when
/// nothing was rejected, otherwise the most frequent rejection verdict
/// (ties break by severity: flag, then rate_limit, then throttle).
fn dominant_verdict(tally: &VerdictCounts) -> &'static str {
    let mut best = (0u64, Verdict::Admit);
    for (count, verdict) in [
        (tally.flagged, Verdict::Flag),
        (tally.rate_limited, Verdict::RateLimit),
        (tally.throttled, Verdict::Throttle),
    ] {
        if count > best.0 {
            best = (count, verdict);
        }
    }
    best.1.label()
}

/// One admitted trajectory, tagged with its global arrival sequence so
/// per-shard queues can be merged back into exact admission order.
type SeqTrajectory = (u64, Trajectory);

/// Admission bookkeeping, held briefly by feedback and retrain.
struct Admission {
    /// Next global arrival sequence number.
    next_seq: u64,
    /// Trajectories admitted but not yet retrained, across all shards.
    held: u64,
}

/// Shared server state: the system under attack plus serving-side
/// buffers. All methods take `&self`; the struct is `Sync`.
pub struct RecApp {
    system: BlackBoxSystem,
    /// The live generation, one cell per shard; all cells swap to the
    /// same `Arc` on retrain.
    snapshots: ShardedPublished<RankerSnapshot>,
    /// Feedback admitted but not yet retrained, sharded by arrival
    /// sequence (`seq % n_shards` — each injected trajectory is a
    /// synthetic user, its sequence number its identity).
    pending: Vec<Mutex<Vec<SeqTrajectory>>>,
    /// Guards the attacker budget and the arrival sequence.
    admission: Mutex<Admission>,
    /// Serializes retrains: each consumes one seed ordinal, so their
    /// order must be total even under concurrent `POST /retrain`.
    retrain: Mutex<()>,
    /// Optional layered online defense judging every trajectory at
    /// admission. Judged **under the admission lock** so the stack's
    /// state transitions follow the global admission order — the
    /// invariant that keeps a defended wire run bit-identical to the
    /// in-process [`recsys::defense::DefendedSystem`] path.
    defense: Option<Mutex<DefenseStack>>,
    flagged_total: AtomicU64,
    /// Per-item popularity (catalog order), frozen at construction —
    /// the reference the popularity drift detector scores against.
    popularity: Vec<f64>,
    /// CUSUM over each trajectory's mean clicked-item popularity
    /// (attack sessions skew cold/target-heavy — see defense.rs).
    pop_drift: std::sync::Arc<telemetry::DriftDetector>,
    /// CUSUM over per-user (per-trajectory) click counts.
    rate_drift: std::sync::Arc<telemetry::DriftDetector>,
    /// Windowed trajectory arrivals: the live feedback ingest rate.
    feedback_rate: std::sync::Arc<telemetry::WindowedCounter>,
}

impl RecApp {
    /// Wraps a fitted system, publishing its clean generation-0
    /// snapshot into a single shard. `defense` judges every incoming
    /// trajectory at admission (an [`recsys::defense::OnlineFilter`]
    /// converts into a detector-only stack via `Into`). Use
    /// [`RecApp::reshard`] to spread state.
    pub fn new(system: BlackBoxSystem, defense: Option<DefenseStack>) -> Self {
        let snapshot = std::sync::Arc::new(system.clean_snapshot());
        let popularity: Vec<f64> = system
            .public_info()
            .popularity
            .iter()
            .map(|&p| f64::from(p))
            .collect();
        Self {
            system,
            snapshots: ShardedPublished::new(1, snapshot),
            pending: vec![Mutex::new(Vec::new())],
            admission: Mutex::new(Admission {
                next_seq: 0,
                held: 0,
            }),
            retrain: Mutex::new(()),
            defense: defense.map(Mutex::new),
            flagged_total: AtomicU64::new(0),
            popularity,
            pop_drift: telemetry::stream::detector(
                "serve_feedback_pop_drift",
                telemetry::CusumConfig::default(),
            ),
            rate_drift: telemetry::stream::detector(
                "serve_feedback_rate_drift",
                telemetry::CusumConfig::default(),
            ),
            feedback_rate: telemetry::stream::windowed_counter("serve_feedback_trajectories"),
        }
    }

    /// Repartitions serving state across `n` shards (clamped to ≥ 1).
    /// The live snapshot and any pending feedback are redistributed;
    /// semantics are unchanged — sharding only moves *which cell*
    /// serves a user and *which queue* holds a trajectory.
    pub fn reshard(&mut self, n: usize) {
        let n = n.max(1);
        let snapshot = self.snapshots.shard(0).load();
        self.snapshots = ShardedPublished::new(n, snapshot);
        let mut held: Vec<SeqTrajectory> = self
            .pending
            .iter_mut()
            .flat_map(|queue| std::mem::take(queue.get_mut().unwrap()))
            .collect();
        held.sort_unstable_by_key(|&(seq, _)| seq);
        let mut queues: Vec<Vec<SeqTrajectory>> = (0..n).map(|_| Vec::new()).collect();
        for (seq, traj) in held {
            queues[(seq % n as u64) as usize].push((seq, traj));
        }
        self.pending = queues.into_iter().map(Mutex::new).collect();
    }

    /// The serving shard count.
    pub fn n_shards(&self) -> usize {
        self.snapshots.len()
    }

    /// The generation currently being served (shard 0 — all shards
    /// converge to the same generation between retrains).
    pub fn generation(&self) -> u64 {
        self.snapshots.read(0).generation()
    }

    /// The wrapped system (tests compare against its in-process path).
    pub fn system(&self) -> &BlackBoxSystem {
        &self.system
    }

    /// Verdict tally of the embedded defense stack (zeros when
    /// undefended). Wire-side experiments read detection
    /// precision/recall off this ledger.
    pub fn defense_counts(&self) -> VerdictCounts {
        self.defense
            .as_ref()
            .map_or_else(VerdictCounts::default, |d| d.lock().unwrap().counts())
    }

    /// Routes one parsed request: [`Route::parse`] then
    /// [`RecApp::dispatch`]. Never blocks on a retrain for read paths;
    /// never panics on client input (panics that do escape are the
    /// *server's* bugs, and the connection layer converts them to
    /// 500s).
    pub fn handle(&self, req: &Request) -> AppResponse {
        match Route::parse(&req.method, &req.path, &req.query) {
            Ok(route) => self.dispatch(&route, &req.body),
            Err(err) => AppResponse::error(err.status, err.message, self.generation()),
        }
    }

    /// Handles one typed route. `body` is consulted only by
    /// [`Route::Feedback`].
    pub fn dispatch(&self, route: &Route, body: &[u8]) -> AppResponse {
        match route {
            Route::Healthz => self.healthz(),
            Route::Metrics { format, window } => self.metrics(*format, *window),
            Route::Info => self.info(),
            Route::Feedback => self.feedback(body),
            Route::Retrain => self.retrain(),
            Route::Recommend { user, k } => self.recommend(*user, *k),
        }
    }

    fn healthz(&self) -> AppResponse {
        let snap = self.snapshots.read(0);
        AppResponse::ok(
            Json::obj()
                .field("ok", true)
                .field("generation", snap.generation())
                .field("shards", self.n_shards()),
            snap.generation(),
            0,
        )
    }

    /// Both layers of the observability plane in one scrape: the
    /// cumulative registry plus the streaming plane, as either the
    /// JSON snapshot (stream views under a `"stream"` key, preserving
    /// the pre-existing top-level shape) or Prometheus text.
    fn metrics(&self, format: MetricsFormat, window: Option<u32>) -> AppResponse {
        let window_secs = window.map(f64::from);
        let cumulative = telemetry::metrics::snapshot();
        let stream = telemetry::stream::snapshot(window_secs);
        match format {
            MetricsFormat::Json => AppResponse::ok(
                cumulative.to_json().field("stream", stream.to_json()),
                self.generation(),
                0,
            ),
            MetricsFormat::Prom => AppResponse::text(
                "text/plain; version=0.0.4",
                telemetry::prom::render(&cumulative, &stream),
                self.generation(),
            ),
        }
    }

    /// The experimenter-side disclosure: everything an in-process
    /// attack reads off the system object, as one document.
    fn info(&self) -> AppResponse {
        let cfg = self.system.config();
        let info = self.system.public_info();
        let snap = self.snapshots.read(0);
        let body = Json::obj()
            .field("num_items", info.num_items)
            .field(
                "target_items",
                Json::Arr(info.target_items.iter().map(|&i| Json::from(i)).collect()),
            )
            .field(
                "popularity",
                Json::Arr(info.popularity.iter().map(|&p| Json::from(p)).collect()),
            )
            .field(
                "eval_users",
                Json::Arr(
                    self.system
                        .protocol()
                        .eval_users()
                        .iter()
                        .map(|&u| Json::from(u))
                        .collect(),
                ),
            )
            .field(
                "config",
                Json::obj()
                    .field("eval_users", cfg.eval_users)
                    .field("top_k", cfg.top_k)
                    .field("n_candidates", cfg.n_candidates)
                    .field("seed", cfg.seed)
                    .field("reserve_attackers", cfg.reserve_attackers),
            )
            .field("ranker", self.system.ranker_name())
            .field("generation", snap.generation())
            .field("shards", self.n_shards())
            .field("observations_spent", self.system.observations_spent())
            .field(
                "defense",
                match &self.defense {
                    Some(stack) => {
                        let stack = stack.lock().unwrap();
                        Json::obj()
                            .field("detector", stack.detector_name())
                            .field("kind", stack.kind_label())
                            .field("fpr", stack.fpr())
                            .field("threshold", stack.threshold())
                            .field("level", stack.level())
                            .field("reputation", stack.reputation())
                            .field("alarms", stack.alarms())
                    }
                    None => Json::Null,
                },
            );
        AppResponse::ok(body, snap.generation(), 0)
    }

    fn recommend(&self, user: u32, k: Option<usize>) -> AppResponse {
        let shard = shard_for_user(user, self.n_shards());
        let snap = self.snapshots.read(shard);
        let generation = snap.generation();
        let k = k.unwrap_or(self.system.config().top_k);
        if !snap.knows_user(user) {
            return AppResponse::error(404, format!("unknown user {user}"), generation);
        }
        let items = snap.recommend_k(self.system.protocol(), self.system.base(), user, k);
        telemetry::metrics::counter("serve_recommendations_total").inc();
        AppResponse::ok(
            Json::obj()
                .field("user", user)
                .field("k", k)
                .field("generation", generation)
                .field(
                    "items",
                    Json::Arr(items.into_iter().map(Json::from).collect()),
                ),
            generation,
            shard as u64,
        )
    }

    /// Admits trajectories into the pending buffers. The whole batch
    /// is validated before any of it is admitted, so a 4xx/409
    /// response means the buffers are untouched.
    fn feedback(&self, body: &[u8]) -> AppResponse {
        let generation = self.generation();
        let Ok(text) = std::str::from_utf8(body) else {
            return AppResponse::error(400, "body is not UTF-8", generation);
        };
        let Ok(doc) = json::parse(text) else {
            return AppResponse::error(400, "body is not valid JSON", generation);
        };
        let Some(Json::Arr(rows)) = doc.get("trajectories") else {
            return AppResponse::error(400, "missing \"trajectories\" array", generation);
        };
        // Valid ids span the full catalog: organic items *plus* the
        // appended target items (ids `num_items..catalog`).
        let num_items = u64::from(self.system.base().catalog());
        let mut parsed: Vec<Trajectory> = Vec::with_capacity(rows.len());
        for row in rows {
            let Json::Arr(items) = row else {
                return AppResponse::error(400, "trajectory is not an array", generation);
            };
            let mut traj = Vec::with_capacity(items.len());
            for item in items {
                match item.as_u64() {
                    Some(i) if i < num_items => traj.push(i as u32),
                    Some(i) => {
                        return AppResponse::error(
                            400,
                            format!("item {i} outside catalog of {num_items}"),
                            generation,
                        );
                    }
                    None => {
                        return AppResponse::error(400, "non-integer item id", generation);
                    }
                }
            }
            parsed.push(traj);
        }

        // Streaming plane: observe the *offered* stream (pre-defense,
        // pre-admission) so the drift detectors see what an attacker
        // sends, not what survives filtering. Observation only — no
        // effect on admission, ordering, or any RNG, so the over-the-
        // wire replay stays bit-identical to the in-process path.
        self.observe_feedback_stream(&parsed);

        // One admission section: defense verdicts, budget check,
        // sequence assignment, and the queue pushes. Judging happens
        // *under the lock* because every verdict advances the defense
        // stack's state — the global admission order must be the
        // judging order for wire runs to stay bit-identical to the
        // in-process defended path. A 409 rolls the stack back to its
        // pre-request state, so a refused request judges nothing.
        let budget = u64::from(self.system.config().reserve_attackers);
        let n = self.pending.len() as u64;
        let offered = parsed.len() as u64;
        let mut admission = self.admission.lock().unwrap();
        let pending_before = admission.held;
        let mut stack = self.defense.as_ref().map(|d| d.lock().unwrap());
        let rollback = stack.as_ref().map(|s| s.state_bytes());
        let detector = stack.as_ref().map_or("none", |s| s.detector_name());
        let before = stack
            .as_ref()
            .map_or(VerdictCounts::default(), |s| s.counts());

        let mut admitted: Vec<Trajectory> = Vec::with_capacity(parsed.len());
        // (verdict, prospective shard) per trajectory, committed to the
        // metrics plane only if the whole request is admitted.
        let mut judged: Vec<(Verdict, u64)> = Vec::with_capacity(parsed.len());
        for traj in parsed {
            let verdict = match stack.as_deref_mut() {
                None => Verdict::Admit,
                Some(stack) => stack.judge(self.system.base(), &traj),
            };
            let slot = (admission.next_seq + admitted.len() as u64) % n;
            judged.push((verdict, slot));
            if verdict == Verdict::Admit {
                admitted.push(traj);
            }
        }
        let tally = {
            let after = stack
                .as_ref()
                .map_or(VerdictCounts::default(), |s| s.counts());
            VerdictCounts {
                admitted: after.admitted - before.admitted,
                flagged: after.flagged - before.flagged,
                rate_limited: after.rate_limited - before.rate_limited,
                throttled: after.throttled - before.throttled,
            }
        };
        let would_hold = admission.held + admitted.len() as u64;
        if would_hold > budget {
            if let (Some(stack), Some(rollback)) = (stack.as_deref_mut(), rollback.as_deref()) {
                stack
                    .restore_state(rollback)
                    .expect("own state bytes round-trip");
            }
            drop(stack);
            let mut refused = AppResponse::error(
                409,
                format!(
                    "attacker budget exhausted: {} pending + {} new > {budget} reserved",
                    admission.held,
                    admitted.len()
                ),
                generation,
            );
            refused.feedback = Some(FeedbackOutcome {
                verdict: dominant_verdict(&tally),
                detector,
                offered,
                accepted: 0,
                pending_before,
                pending: pending_before,
            });
            return refused;
        }
        drop(stack);
        let accepted = admitted.len() as u64;
        for traj in admitted {
            let seq = admission.next_seq;
            admission.next_seq += 1;
            self.pending[(seq % n) as usize]
                .lock()
                .unwrap()
                .push((seq, traj));
        }
        admission.held = would_hold;
        let held = admission.held;
        drop(admission);

        // Metrics are a pure side channel, so they commit after the
        // admission section: a rolled-back 409 leaves no trace, and
        // the exported verdict counts always match the stack's ledger.
        let verdicts = telemetry::stream::counter_family(
            "serve_feedback_verdicts",
            &["detector", "verdict", "shard"],
        );
        for (verdict, slot) in &judged {
            verdicts.add(&[detector, verdict.label(), &slot.to_string()], 1);
        }
        self.flagged_total
            .fetch_add(tally.flagged, Ordering::Relaxed);
        if tally.flagged > 0 {
            telemetry::metrics::counter("serve_feedback_flagged_total").add(tally.flagged);
        }

        let mut resp = AppResponse::ok(
            Json::obj()
                .field("accepted", accepted)
                .field("flagged", tally.flagged)
                .field("rate_limited", tally.rate_limited)
                .field("throttled", tally.throttled)
                .field("pending", held),
            generation,
            0,
        );
        resp.feedback = Some(FeedbackOutcome {
            verdict: dominant_verdict(&tally),
            detector,
            offered,
            accepted,
            pending_before,
            pending: held,
        });
        resp
    }

    /// Feeds the feedback drift detectors and the windowed ingest
    /// counter. `serve_feedback_pop_drift` watches each trajectory's
    /// mean clicked-item popularity (target-hammering sessions drag it
    /// down); `serve_feedback_rate_drift` watches per-user click
    /// counts. Their state is published via `/metrics` — the hook the
    /// adaptive defense (ROADMAP item 3) will calibrate from.
    fn observe_feedback_stream(&self, parsed: &[Trajectory]) {
        if !telemetry::stream::enabled() || parsed.is_empty() {
            return;
        }
        self.feedback_rate.add(parsed.len() as u64);
        for traj in parsed {
            if traj.is_empty() {
                continue;
            }
            let sum: f64 = traj
                .iter()
                .map(|&i| self.popularity.get(i as usize).copied().unwrap_or(0.0))
                .sum();
            self.pop_drift.observe(sum / traj.len() as f64);
            self.rate_drift.observe(traj.len() as f64);
        }
    }

    /// Drains every shard's pending feedback into a fresh generation
    /// and publishes it to every shard cell. Readers of the old
    /// generation are never blocked; feedback arriving mid-retrain
    /// lands in the *next* generation. Merging by arrival sequence
    /// reconstructs the exact unsharded admission order — the
    /// cross-shard barrier behind bit-identical replays.
    fn retrain(&self) -> AppResponse {
        let _order = self.retrain.lock().unwrap();
        let mut drained: Vec<SeqTrajectory> = {
            let mut admission = self.admission.lock().unwrap();
            let rows = self
                .pending
                .iter()
                .flat_map(|queue| std::mem::take(&mut *queue.lock().unwrap()))
                .collect();
            admission.held = 0;
            rows
        };
        drained.sort_unstable_by_key(|&(seq, _)| seq);
        let poison: Vec<Trajectory> = drained.into_iter().map(|(_, traj)| traj).collect();
        let ingested = poison.len() as u64;
        let snap = self.system.retrain_snapshot(&poison);
        let generation = snap.generation();
        let seed = snap.seed();
        let retired = self.snapshots.publish_all(std::sync::Arc::new(snap));
        telemetry::metrics::counter("serve_retrains_total").inc();
        telemetry::metrics::gauge("serve_retired_snapshots").set(retired as i64);
        AppResponse::ok(
            Json::obj()
                .field("generation", generation)
                .field("seed", seed)
                .field("ingested", ingested),
            generation,
            0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Limits, RequestParser};
    use recsys::data::Dataset;
    use recsys::rankers::ItemPop;
    use recsys::system::SystemConfig;

    fn app() -> RecApp {
        app_with_shards(1)
    }

    fn app_with_shards(n: usize) -> RecApp {
        let histories = (0..40u32)
            .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
            .collect();
        let data = Dataset::from_histories("toy", histories, 60, 8);
        let system = BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 16,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        );
        let mut app = RecApp::new(system, None);
        app.reshard(n);
        app
    }

    fn get(app: &RecApp, target: &str) -> AppResponse {
        request(app, "GET", target, "")
    }

    fn request(app: &RecApp, method: &str, target: &str, body: &str) -> AppResponse {
        let raw = format!(
            "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let mut parser = RequestParser::new(Limits::default());
        parser.push(raw.as_bytes());
        let req = parser.next_request().unwrap().unwrap();
        app.handle(&req)
    }

    #[test]
    fn route_parse_is_the_single_status_authority() {
        let q = |pairs: &[(&str, &str)]| -> Vec<(String, String)> {
            pairs
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect()
        };
        assert_eq!(Route::parse("GET", "/healthz", &[]), Ok(Route::Healthz));
        assert_eq!(Route::parse("POST", "/feedback", &[]), Ok(Route::Feedback));
        assert_eq!(
            Route::parse("GET", "/recommend/7", &q(&[("k", "5")])),
            Ok(Route::Recommend {
                user: 7,
                k: Some(5)
            })
        );
        assert_eq!(
            Route::parse("GET", "/recommend/7", &[]),
            Ok(Route::Recommend { user: 7, k: None })
        );
        // 405: known path, wrong method.
        for (method, path) in [
            ("POST", "/healthz"),
            ("DELETE", "/feedback"),
            ("GET", "/retrain"),
            ("POST", "/recommend/3"),
        ] {
            assert_eq!(Route::parse(method, path, &[]).unwrap_err().status, 405);
        }
        // 400: malformed parameters.
        assert_eq!(
            Route::parse("GET", "/recommend/banana", &[])
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            Route::parse("GET", "/recommend/1", &q(&[("k", "banana")]))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            Route::parse("GET", "/recommend/1", &q(&[("k", "99999")]))
                .unwrap_err()
                .status,
            400
        );
        // 404: unknown path.
        assert_eq!(Route::parse("GET", "/nope", &[]).unwrap_err().status, 404);
        // /metrics query handling.
        assert_eq!(
            Route::parse("GET", "/metrics", &[]),
            Ok(Route::Metrics {
                format: MetricsFormat::Json,
                window: None
            })
        );
        assert_eq!(
            Route::parse(
                "GET",
                "/metrics",
                &q(&[("format", "prom"), ("window", "10")])
            ),
            Ok(Route::Metrics {
                format: MetricsFormat::Prom,
                window: Some(10)
            })
        );
        for bad in [
            q(&[("format", "xml")]),
            q(&[("window", "0")]),
            q(&[("window", "-3")]),
            q(&[("window", "soon")]),
        ] {
            assert_eq!(
                Route::parse("GET", "/metrics", &bad).unwrap_err().status,
                400
            );
        }
    }

    #[test]
    fn metrics_renders_both_formats() {
        let app = app();
        let json = get(&app, "/metrics");
        assert_eq!(json.status, 200);
        assert_eq!(json.content_type, "application/json");
        assert!(
            json.body.get("stream").is_some(),
            "JSON scrape carries the stream plane"
        );

        let prom = get(&app, "/metrics?format=prom");
        assert_eq!(prom.status, 200);
        assert!(prom.content_type.starts_with("text/plain"));
        let text = prom.render_body();
        // RecApp::new registers these in the global stream registry,
        // so they are present regardless of which tests ran before.
        assert!(
            text.contains("# TYPE serve_feedback_pop_drift gauge"),
            "text:\n{text}"
        );
        assert!(
            text.contains("serve_feedback_trajectories_rate{window=\"60\"}"),
            "text:\n{text}"
        );
        // The windowed views narrow with ?window=.
        let narrow = get(&app, "/metrics?format=prom&window=5");
        assert!(narrow
            .render_body()
            .contains("serve_feedback_trajectories_rate{window=\"5\"}"));

        let bad = get(&app, "/metrics?format=xml");
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn route_classification_for_the_event_loop() {
        assert!(Route::Healthz.is_fast());
        assert!(Route::Recommend { user: 1, k: None }.is_fast());
        assert!(!Route::Feedback.is_fast());
        assert!(!Route::Retrain.is_fast());
        assert_eq!(Route::Recommend { user: 7, k: None }.shard(4), 3);
        assert_eq!(Route::Retrain.shard(4), 0);
    }

    #[test]
    fn healthz_and_info_describe_the_clean_system() {
        let app = app();
        let health = get(&app, "/healthz");
        assert_eq!(health.status, 200);
        assert_eq!(
            health.body.get("generation").and_then(Json::as_u64),
            Some(0)
        );

        let info = get(&app, "/info");
        assert_eq!(info.status, 200);
        assert_eq!(
            info.body.get("ranker").and_then(Json::as_str),
            Some("ItemPop")
        );
        assert_eq!(info.body.get("shards").and_then(Json::as_u64), Some(1));
        assert_eq!(
            info.body
                .get("config")
                .and_then(|c| c.get("reserve_attackers"))
                .and_then(Json::as_u64),
            Some(8)
        );
    }

    #[test]
    fn recommend_serves_the_protocol_lists() {
        let app = app();
        let user = app.system().protocol().eval_users()[0];
        let resp = get(&app, &format!("/recommend/{user}"));
        assert_eq!(resp.status, 200);
        let Some(Json::Arr(items)) = resp.body.get("items") else {
            panic!("items missing");
        };
        assert_eq!(items.len(), app.system().config().top_k);

        let small = get(&app, &format!("/recommend/{user}?k=3"));
        let Some(Json::Arr(prefix)) = small.body.get("items") else {
            panic!("items missing");
        };
        assert_eq!(prefix.as_slice(), &items[..3]);
    }

    #[test]
    fn recommend_rejects_unknown_users_and_bad_k() {
        let app = app();
        assert_eq!(get(&app, "/recommend/9999").status, 404);
        assert_eq!(get(&app, "/recommend/banana").status, 400);
        assert_eq!(get(&app, "/recommend/0?k=banana").status, 400);
    }

    #[test]
    fn unknown_routes_and_wrong_methods() {
        let app = app();
        assert_eq!(get(&app, "/nope").status, 404);
        assert_eq!(request(&app, "POST", "/healthz", "").status, 405);
        assert_eq!(request(&app, "DELETE", "/feedback", "").status, 405);
    }

    #[test]
    fn feedback_validates_and_buffers() {
        let app = app();
        let bad = request(&app, "POST", "/feedback", "{\"trajectories\":[[999]]}");
        assert_eq!(bad.status, 400, "item outside catalog");
        let ok = request(&app, "POST", "/feedback", "{\"trajectories\":[[1,2],[3]]}");
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body.get("accepted").and_then(Json::as_u64), Some(2));
        assert_eq!(ok.body.get("pending").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn feedback_over_budget_is_409_and_untouched() {
        let app = app();
        let fill = "{\"trajectories\":[[1],[1],[1],[1],[1],[1],[1],[1]]}";
        assert_eq!(request(&app, "POST", "/feedback", fill).status, 200);
        let over = request(&app, "POST", "/feedback", "{\"trajectories\":[[2]]}");
        assert_eq!(over.status, 409);
        // Retrain drains the buffer; budget frees up.
        assert_eq!(request(&app, "POST", "/retrain", "").status, 200);
        let again = request(&app, "POST", "/feedback", "{\"trajectories\":[[2]]}");
        assert_eq!(again.status, 200);
    }

    #[test]
    fn retrain_matches_the_in_process_observation_stream() {
        // The bit-identity contract must hold at every shard count:
        // per-shard queues merged by arrival sequence reconstruct the
        // exact unsharded poison order.
        for shards in [1usize, 3, 4] {
            let histories = (0..40u32)
                .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
                .collect();
            let data = Dataset::from_histories("toy", histories, 60, 8);
            let cfg = SystemConfig {
                eval_users: 16,
                reserve_attackers: 8,
                ..SystemConfig::default()
            };
            let reference =
                BlackBoxSystem::build(data.clone(), Box::new(ItemPop::new()), cfg.clone());
            let target = reference.public_info().target_items[0];
            // Distinct trajectories so any order scramble would change
            // the fine-tune input.
            let poison: Vec<Vec<u32>> = (0..4u32)
                .map(|i| {
                    let mut t = vec![target; 5];
                    t.push(i);
                    t
                })
                .collect();
            let expected = reference.observe(&poison);

            let mut app = RecApp::new(
                BlackBoxSystem::build(data, Box::new(ItemPop::new()), cfg),
                None,
            );
            app.reshard(shards);
            assert_eq!(app.n_shards(), shards);
            let body = format!(
                "{{\"trajectories\":[{}]}}",
                poison
                    .iter()
                    .map(|t| format!(
                        "[{}]",
                        t.iter()
                            .map(|i| i.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    ))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            assert_eq!(request(&app, "POST", "/feedback", &body).status, 200);
            let retrain = request(&app, "POST", "/retrain", "");
            assert_eq!(retrain.status, 200);
            assert_eq!(
                retrain.body.get("seed").and_then(Json::as_u64),
                Some(expected.seed),
                "served retrain must consume the same seed stream (shards={shards})"
            );
            assert_eq!(
                retrain.body.get("generation").and_then(Json::as_u64),
                Some(1)
            );

            // Count target hits over the served lists: must equal the
            // in-process observation's RecNum.
            let mut rec_num = 0u32;
            let targets = app.system().public_info().target_items;
            for &user in app.system().protocol().eval_users() {
                let resp = get(&app, &format!("/recommend/{user}"));
                let Some(Json::Arr(items)) = resp.body.get("items") else {
                    panic!("items missing");
                };
                rec_num += items
                    .iter()
                    .filter_map(Json::as_u64)
                    .filter(|&i| targets.contains(&(i as u32)))
                    .count() as u32;
            }
            assert_eq!(rec_num, expected.rec_num, "shards={shards}");
        }
    }

    #[test]
    fn resharding_preserves_pending_feedback_and_budget() {
        let mut app = app_with_shards(1);
        assert_eq!(
            request(
                &app,
                "POST",
                "/feedback",
                "{\"trajectories\":[[1],[2],[3]]}"
            )
            .status,
            200
        );
        app.reshard(4);
        // Budget still accounts for the redistributed trajectories…
        let fill = "{\"trajectories\":[[4],[4],[4],[4],[4],[4]]}";
        assert_eq!(request(&app, "POST", "/feedback", fill).status, 409);
        // …and retrain ingests all of them.
        let retrain = request(&app, "POST", "/retrain", "");
        assert_eq!(retrain.body.get("ingested").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn recommend_reads_the_owning_shard_cell() {
        let app = app_with_shards(4);
        let user = app.system().protocol().eval_users()[0];
        let resp = get(&app, &format!("/recommend/{user}"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.shard, (user % 4) as u64);
        // After a retrain sweep, every shard serves the new generation.
        assert_eq!(request(&app, "POST", "/retrain", "").status, 200);
        for &u in app.system().protocol().eval_users().iter().take(8) {
            let resp = get(&app, &format!("/recommend/{u}"));
            assert_eq!(
                resp.body.get("generation").and_then(Json::as_u64),
                Some(1),
                "user {u} (shard {}) must see the swept generation",
                u % 4
            );
        }
    }

    #[test]
    fn online_defense_drops_flagged_feedback_at_the_door() {
        let histories = (0..60u32)
            .map(|u| (0..8).map(|t| (u + t * 3) % 40).collect())
            .collect();
        let data = Dataset::from_histories("d", histories, 200, 8);
        let filter = recsys::defense::OnlineFilter::calibrate(
            Box::new(recsys::defense::RepetitionDetector),
            &data,
            0.05,
        );
        let system = BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 16,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        );
        let app = RecApp::new(system, Some(filter.into()));
        // A blatant burst is flagged; an organic-looking one passes.
        let resp = request(
            &app,
            "POST",
            "/feedback",
            "{\"trajectories\":[[5,5,5,5,5,5],[1,4,7,10,13,16]]}",
        );
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.get("accepted").and_then(Json::as_u64), Some(1));
        assert_eq!(resp.body.get("flagged").and_then(Json::as_u64), Some(1));
        let info = get(&app, "/info");
        assert_eq!(
            info.body
                .get("defense")
                .and_then(|d| d.get("detector"))
                .and_then(Json::as_str),
            Some("repetition")
        );
    }
}
