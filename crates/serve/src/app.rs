//! The recommendation application behind the socket: routing, the
//! published snapshot, the pending-feedback buffer, and retrains.
//!
//! [`RecApp`] is transport-free — it maps parsed [`Request`]s to JSON
//! responses — so its semantics are unit-testable without a listener.
//!
//! Concurrency model (DESIGN.md §5e):
//!
//! * **Reads never wait.** `/recommend`, `/healthz`, `/info` and
//!   `/metrics` touch only the [`runtime::Published`] snapshot cell —
//!   a lock-free hazard-pointer read — plus immutable state.
//! * **Retrains happen off to the side.** `POST /retrain` drains the
//!   pending feedback, fine-tunes a fresh [`RankerSnapshot`] while the
//!   previous generation keeps serving, then publishes it with one
//!   atomic swap. A `Mutex` serializes concurrent retrains (the seed
//!   stream is consumed per retrain, so they must be ordered), but no
//!   reader ever takes it.
//! * **Feedback is buffered, not applied.** `POST /feedback` admits
//!   trajectories into a pending buffer (optionally through a
//!   calibrated [`OnlineFilter`]); only a retrain makes them visible.
//!
//! This mirrors the in-process [`BlackBoxSystem`] exactly: one
//! feedback-then-retrain round trip consumes one observation-seed
//! ordinal and produces the same model the in-process `observe` call
//! would have produced — the bit-identity the over-the-wire attack
//! path rests on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use recsys::data::Trajectory;
use recsys::defense::OnlineFilter;
use recsys::snapshot::RankerSnapshot;
use recsys::system::BlackBoxSystem;
use runtime::Published;
use telemetry::json::{self, Json};

use crate::http::Request;

/// A routed response: status + JSON body, tagged with the snapshot
/// generation that answered (for the access log).
#[derive(Debug)]
pub struct AppResponse {
    pub status: u16,
    pub body: Json,
    pub generation: u64,
}

impl AppResponse {
    fn ok(body: Json, generation: u64) -> Self {
        Self {
            status: 200,
            body,
            generation,
        }
    }

    fn error(status: u16, message: impl Into<String>, generation: u64) -> Self {
        Self {
            status,
            body: Json::obj().field("error", message.into()),
            generation,
        }
    }
}

/// Shared server state: the system under attack plus serving-side
/// buffers. All methods take `&self`; the struct is `Sync`.
pub struct RecApp {
    system: BlackBoxSystem,
    /// The live generation; swapped atomically by retrains.
    snapshot: Published<RankerSnapshot>,
    /// Feedback admitted but not yet retrained into a generation.
    pending: Mutex<Vec<Trajectory>>,
    /// Serializes retrains: each consumes one seed ordinal, so their
    /// order must be total even under concurrent `POST /retrain`.
    retrain: Mutex<()>,
    /// Optional online injection filter consulted per trajectory.
    defense: Option<OnlineFilter>,
    flagged_total: AtomicU64,
}

impl RecApp {
    /// Wraps a fitted system, publishing its clean generation-0
    /// snapshot. `defense` rejects flagged feedback at ingestion.
    pub fn new(system: BlackBoxSystem, defense: Option<OnlineFilter>) -> Self {
        let snapshot = Published::new(std::sync::Arc::new(system.clean_snapshot()));
        Self {
            system,
            snapshot,
            pending: Mutex::new(Vec::new()),
            retrain: Mutex::new(()),
            defense,
            flagged_total: AtomicU64::new(0),
        }
    }

    /// The generation currently being served.
    pub fn generation(&self) -> u64 {
        self.snapshot.read().generation()
    }

    /// The wrapped system (tests compare against its in-process path).
    pub fn system(&self) -> &BlackBoxSystem {
        &self.system
    }

    /// Routes one parsed request. Never blocks on a retrain for read
    /// paths; never panics on client input (panics that do escape are
    /// the *server's* bugs, and the connection layer converts them to
    /// 500s).
    pub fn handle(&self, req: &Request) -> AppResponse {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => self.metrics(),
            ("GET", "/info") => self.info(),
            ("POST", "/feedback") => self.feedback(req),
            ("POST", "/retrain") => self.retrain(),
            ("GET", path) if path.starts_with("/recommend/") => self.recommend(req, path),
            (_, "/healthz" | "/metrics" | "/info") => self.method_not_allowed(),
            (_, "/feedback" | "/retrain") => self.method_not_allowed(),
            (_, path) if path.starts_with("/recommend/") => self.method_not_allowed(),
            _ => AppResponse::error(404, format!("no route for {}", req.path), self.generation()),
        }
    }

    fn method_not_allowed(&self) -> AppResponse {
        AppResponse::error(405, "method not allowed for this route", self.generation())
    }

    fn healthz(&self) -> AppResponse {
        let snap = self.snapshot.read();
        AppResponse::ok(
            Json::obj()
                .field("ok", true)
                .field("generation", snap.generation()),
            snap.generation(),
        )
    }

    fn metrics(&self) -> AppResponse {
        AppResponse::ok(telemetry::metrics::snapshot().to_json(), self.generation())
    }

    /// The experimenter-side disclosure: everything an in-process
    /// attack reads off the system object, as one document.
    fn info(&self) -> AppResponse {
        let cfg = self.system.config();
        let info = self.system.public_info();
        let snap = self.snapshot.read();
        let body = Json::obj()
            .field("num_items", info.num_items)
            .field(
                "target_items",
                Json::Arr(info.target_items.iter().map(|&i| Json::from(i)).collect()),
            )
            .field(
                "popularity",
                Json::Arr(info.popularity.iter().map(|&p| Json::from(p)).collect()),
            )
            .field(
                "eval_users",
                Json::Arr(
                    self.system
                        .protocol()
                        .eval_users()
                        .iter()
                        .map(|&u| Json::from(u))
                        .collect(),
                ),
            )
            .field(
                "config",
                Json::obj()
                    .field("eval_users", cfg.eval_users)
                    .field("top_k", cfg.top_k)
                    .field("n_candidates", cfg.n_candidates)
                    .field("seed", cfg.seed)
                    .field("reserve_attackers", cfg.reserve_attackers),
            )
            .field("ranker", self.system.ranker_name())
            .field("generation", snap.generation())
            .field("observations_spent", self.system.observations_spent())
            .field(
                "defense",
                match &self.defense {
                    Some(filter) => Json::obj()
                        .field("detector", filter.detector_name())
                        .field("fpr", filter.fpr())
                        .field("threshold", filter.threshold()),
                    None => Json::Null,
                },
            );
        AppResponse::ok(body, snap.generation())
    }

    fn recommend(&self, req: &Request, path: &str) -> AppResponse {
        let snap = self.snapshot.read();
        let generation = snap.generation();
        let user_str = &path["/recommend/".len()..];
        let Ok(user) = user_str.parse::<u32>() else {
            return AppResponse::error(400, format!("bad user id {user_str:?}"), generation);
        };
        let k = match req.query_param("k") {
            None => self.system.config().top_k,
            Some(raw) => match raw.parse::<usize>() {
                Ok(k) if k <= 10_000 => k,
                _ => {
                    return AppResponse::error(400, format!("bad k {raw:?}"), generation);
                }
            },
        };
        if !snap.knows_user(user) {
            return AppResponse::error(404, format!("unknown user {user}"), generation);
        }
        let items = snap.recommend_k(self.system.protocol(), self.system.base(), user, k);
        telemetry::metrics::counter("serve_recommendations_total").inc();
        AppResponse::ok(
            Json::obj()
                .field("user", user)
                .field("k", k)
                .field("generation", generation)
                .field(
                    "items",
                    Json::Arr(items.into_iter().map(Json::from).collect()),
                ),
            generation,
        )
    }

    /// Admits trajectories into the pending buffer. The whole batch is
    /// validated before any of it is admitted, so a 4xx/409 response
    /// means the buffer is untouched.
    fn feedback(&self, req: &Request) -> AppResponse {
        let generation = self.generation();
        let Ok(text) = std::str::from_utf8(&req.body) else {
            return AppResponse::error(400, "body is not UTF-8", generation);
        };
        let Ok(doc) = json::parse(text) else {
            return AppResponse::error(400, "body is not valid JSON", generation);
        };
        let Some(Json::Arr(rows)) = doc.get("trajectories") else {
            return AppResponse::error(400, "missing \"trajectories\" array", generation);
        };
        // Valid ids span the full catalog: organic items *plus* the
        // appended target items (ids `num_items..catalog`).
        let num_items = u64::from(self.system.base().catalog());
        let mut parsed: Vec<Trajectory> = Vec::with_capacity(rows.len());
        for row in rows {
            let Json::Arr(items) = row else {
                return AppResponse::error(400, "trajectory is not an array", generation);
            };
            let mut traj = Vec::with_capacity(items.len());
            for item in items {
                match item.as_u64() {
                    Some(i) if i < num_items => traj.push(i as u32),
                    Some(i) => {
                        return AppResponse::error(
                            400,
                            format!("item {i} outside catalog of {num_items}"),
                            generation,
                        );
                    }
                    None => {
                        return AppResponse::error(400, "non-integer item id", generation);
                    }
                }
            }
            parsed.push(traj);
        }

        // Online defense: score each trajectory against the frozen
        // threshold; flagged ones are dropped at the door.
        let mut admitted = Vec::with_capacity(parsed.len());
        let mut flagged = 0u64;
        for traj in parsed {
            let admit = self
                .defense
                .as_ref()
                .is_none_or(|f| f.admits(self.system.base(), &traj));
            if admit {
                admitted.push(traj);
            } else {
                flagged += 1;
            }
        }
        self.flagged_total.fetch_add(flagged, Ordering::Relaxed);
        if flagged > 0 {
            telemetry::metrics::counter("serve_feedback_flagged_total").add(flagged);
        }

        let budget = u64::from(self.system.config().reserve_attackers);
        let mut pending = self.pending.lock().unwrap();
        let would_hold = pending.len() as u64 + admitted.len() as u64;
        if would_hold > budget {
            return AppResponse::error(
                409,
                format!(
                    "attacker budget exhausted: {} pending + {} new > {budget} reserved",
                    pending.len(),
                    admitted.len()
                ),
                generation,
            );
        }
        let accepted = admitted.len() as u64;
        pending.extend(admitted);
        let held = pending.len() as u64;
        drop(pending);
        AppResponse::ok(
            Json::obj()
                .field("accepted", accepted)
                .field("flagged", flagged)
                .field("pending", held),
            generation,
        )
    }

    /// Drains the pending feedback into a fresh generation and
    /// publishes it. Readers of the old generation are never blocked;
    /// feedback arriving mid-retrain lands in the *next* generation.
    fn retrain(&self) -> AppResponse {
        let _order = self.retrain.lock().unwrap();
        let poison = std::mem::take(&mut *self.pending.lock().unwrap());
        let ingested = poison.len() as u64;
        let snap = self.system.retrain_snapshot(&poison);
        let generation = snap.generation();
        let seed = snap.seed();
        let retired = self.snapshot.publish(std::sync::Arc::new(snap));
        telemetry::metrics::counter("serve_retrains_total").inc();
        telemetry::metrics::gauge("serve_retired_snapshots").set(retired as i64);
        AppResponse::ok(
            Json::obj()
                .field("generation", generation)
                .field("seed", seed)
                .field("ingested", ingested),
            generation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Limits, RequestParser};
    use recsys::data::Dataset;
    use recsys::rankers::ItemPop;
    use recsys::system::SystemConfig;

    fn app() -> RecApp {
        let histories = (0..40u32)
            .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
            .collect();
        let data = Dataset::from_histories("toy", histories, 60, 8);
        let system = BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 16,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        );
        RecApp::new(system, None)
    }

    fn get(app: &RecApp, target: &str) -> AppResponse {
        request(app, "GET", target, "")
    }

    fn request(app: &RecApp, method: &str, target: &str, body: &str) -> AppResponse {
        let raw = format!(
            "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let mut parser = RequestParser::new(Limits::default());
        parser.push(raw.as_bytes());
        let req = parser.next_request().unwrap().unwrap();
        app.handle(&req)
    }

    #[test]
    fn healthz_and_info_describe_the_clean_system() {
        let app = app();
        let health = get(&app, "/healthz");
        assert_eq!(health.status, 200);
        assert_eq!(
            health.body.get("generation").and_then(Json::as_u64),
            Some(0)
        );

        let info = get(&app, "/info");
        assert_eq!(info.status, 200);
        assert_eq!(
            info.body.get("ranker").and_then(Json::as_str),
            Some("ItemPop")
        );
        assert_eq!(
            info.body
                .get("config")
                .and_then(|c| c.get("reserve_attackers"))
                .and_then(Json::as_u64),
            Some(8)
        );
    }

    #[test]
    fn recommend_serves_the_protocol_lists() {
        let app = app();
        let user = app.system().protocol().eval_users()[0];
        let resp = get(&app, &format!("/recommend/{user}"));
        assert_eq!(resp.status, 200);
        let Some(Json::Arr(items)) = resp.body.get("items") else {
            panic!("items missing");
        };
        assert_eq!(items.len(), app.system().config().top_k);

        let small = get(&app, &format!("/recommend/{user}?k=3"));
        let Some(Json::Arr(prefix)) = small.body.get("items") else {
            panic!("items missing");
        };
        assert_eq!(prefix.as_slice(), &items[..3]);
    }

    #[test]
    fn recommend_rejects_unknown_users_and_bad_k() {
        let app = app();
        assert_eq!(get(&app, "/recommend/9999").status, 404);
        assert_eq!(get(&app, "/recommend/banana").status, 400);
        assert_eq!(get(&app, "/recommend/0?k=banana").status, 400);
    }

    #[test]
    fn unknown_routes_and_wrong_methods() {
        let app = app();
        assert_eq!(get(&app, "/nope").status, 404);
        assert_eq!(request(&app, "POST", "/healthz", "").status, 405);
        assert_eq!(request(&app, "DELETE", "/feedback", "").status, 405);
    }

    #[test]
    fn feedback_validates_and_buffers() {
        let app = app();
        let bad = request(&app, "POST", "/feedback", "{\"trajectories\":[[999]]}");
        assert_eq!(bad.status, 400, "item outside catalog");
        let ok = request(&app, "POST", "/feedback", "{\"trajectories\":[[1,2],[3]]}");
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body.get("accepted").and_then(Json::as_u64), Some(2));
        assert_eq!(ok.body.get("pending").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn feedback_over_budget_is_409_and_untouched() {
        let app = app();
        let fill = "{\"trajectories\":[[1],[1],[1],[1],[1],[1],[1],[1]]}";
        assert_eq!(request(&app, "POST", "/feedback", fill).status, 200);
        let over = request(&app, "POST", "/feedback", "{\"trajectories\":[[2]]}");
        assert_eq!(over.status, 409);
        // Retrain drains the buffer; budget frees up.
        assert_eq!(request(&app, "POST", "/retrain", "").status, 200);
        let again = request(&app, "POST", "/feedback", "{\"trajectories\":[[2]]}");
        assert_eq!(again.status, 200);
    }

    #[test]
    fn retrain_matches_the_in_process_observation_stream() {
        let histories = (0..40u32)
            .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
            .collect();
        let data = Dataset::from_histories("toy", histories, 60, 8);
        let cfg = SystemConfig {
            eval_users: 16,
            reserve_attackers: 8,
            ..SystemConfig::default()
        };
        let reference = BlackBoxSystem::build(data.clone(), Box::new(ItemPop::new()), cfg.clone());
        let target = reference.public_info().target_items[0];
        let poison = vec![vec![target; 6]; 4];
        let expected = reference.observe(&poison);

        let app = RecApp::new(
            BlackBoxSystem::build(data, Box::new(ItemPop::new()), cfg),
            None,
        );
        let body = format!(
            "{{\"trajectories\":[{}]}}",
            poison
                .iter()
                .map(|t| format!(
                    "[{}]",
                    t.iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ))
                .collect::<Vec<_>>()
                .join(",")
        );
        assert_eq!(request(&app, "POST", "/feedback", &body).status, 200);
        let retrain = request(&app, "POST", "/retrain", "");
        assert_eq!(retrain.status, 200);
        assert_eq!(
            retrain.body.get("seed").and_then(Json::as_u64),
            Some(expected.seed),
            "served retrain must consume the same seed stream"
        );
        assert_eq!(
            retrain.body.get("generation").and_then(Json::as_u64),
            Some(1)
        );

        // Count target hits over the served lists: must equal the
        // in-process observation's RecNum.
        let mut rec_num = 0u32;
        let targets = app.system().public_info().target_items;
        for &user in app.system().protocol().eval_users() {
            let resp = get(&app, &format!("/recommend/{user}"));
            let Some(Json::Arr(items)) = resp.body.get("items") else {
                panic!("items missing");
            };
            rec_num += items
                .iter()
                .filter_map(Json::as_u64)
                .filter(|&i| targets.contains(&(i as u32)))
                .count() as u32;
        }
        assert_eq!(rec_num, expected.rec_num);
    }

    #[test]
    fn online_defense_drops_flagged_feedback_at_the_door() {
        let histories = (0..60u32)
            .map(|u| (0..8).map(|t| (u + t * 3) % 40).collect())
            .collect();
        let data = Dataset::from_histories("d", histories, 200, 8);
        let filter =
            OnlineFilter::calibrate(Box::new(recsys::defense::RepetitionDetector), &data, 0.05);
        let system = BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 16,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        );
        let app = RecApp::new(system, Some(filter));
        // A blatant burst is flagged; an organic-looking one passes.
        let resp = request(
            &app,
            "POST",
            "/feedback",
            "{\"trajectories\":[[5,5,5,5,5,5],[1,4,7,10,13,16]]}",
        );
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.get("accepted").and_then(Json::as_u64), Some(1));
        assert_eq!(resp.body.get("flagged").and_then(Json::as_u64), Some(1));
        let info = get(&app, "/info");
        assert_eq!(
            info.body
                .get("defense")
                .and_then(|d| d.get("detector"))
                .and_then(Json::as_str),
            Some("repetition")
        );
    }
}
