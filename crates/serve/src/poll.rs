//! A hand-rolled readiness poller over raw Linux syscalls — no `libc`
//! crate, in keeping with the workspace's zero-dependency rule
//! (DESIGN.md §5f).
//!
//! [`Poller`] prefers **epoll** (`epoll_create1`/`epoll_ctl`/
//! `epoll_pwait`) and falls back to **ppoll(2)** when epoll is
//! unavailable (exotic kernels, seccomp filters); both backends are
//! driven through the same level-triggered API, so the event loop
//! never knows which one it got. On non-Linux targets construction
//! fails cleanly and the server falls back to its blocking driver.
//!
//! The syscall layer is three thin `asm!` shims (x86_64 and aarch64).
//! Level-triggered semantics are deliberate: the event loop re-polls
//! until it drains a readiness edge anyway, and level-triggering makes
//! a missed wakeup impossible by construction.
//!
//! [`Waker`] is the cross-thread nudge: a pipe registered with the
//! poller, written by worker threads when an offloaded response is
//! ready. A `pending` flag collapses wake storms into one byte so the
//! pipe can never fill up and block a worker.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

/// What a registration wants to hear about.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event. Errors and hangups surface as readability —
/// the subsequent read returns 0/`Err` and the owner tears down.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! Raw syscall shims. Numbers are per-architecture; the calling
    //! convention is the kernel's, not the C library's.

    #[cfg(target_arch = "x86_64")]
    pub mod nr {
        pub const CLOSE: usize = 3;
        pub const FCNTL: usize = 72;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const PPOLL: usize = 271;
        pub const EPOLL_CREATE1: usize = 291;
        pub const PRLIMIT64: usize = 302;
    }

    #[cfg(target_arch = "aarch64")]
    pub mod nr {
        pub const CLOSE: usize = 57;
        pub const FCNTL: usize = 25;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const PPOLL: usize = 73;
        pub const EPOLL_CREATE1: usize = 20;
        pub const PRLIMIT64: usize = 261;
    }

    /// Six-argument syscall; unused trailing arguments are zero.
    ///
    /// # Safety
    ///
    /// The caller must uphold the kernel contract for syscall `n`:
    /// pointer arguments must reference live memory of the expected
    /// shape for the duration of the call.
    #[cfg(target_arch = "x86_64")]
    pub unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// See the x86_64 twin for the safety contract.
    #[cfg(target_arch = "aarch64")]
    pub unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            in("x8") n,
            options(nostack),
        );
        ret
    }

    /// Maps the kernel's negative-errno convention onto `io::Result`.
    pub fn check(ret: isize) -> std::io::Result<usize> {
        if ret < 0 {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::{sys, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLL_CLOEXEC: usize = 0x80000;

    /// Kernel epoll_event. x86_64 packs it (legacy 32-bit layout
    /// compatibility); every other architecture aligns naturally.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    fn interest_to_epoll(interest: Interest) -> u32 {
        let mut events = 0;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    enum Backend {
        Epoll {
            epfd: RawFd,
            buf: Vec<EpollEvent>,
        },
        /// ppoll keeps its own registry; the fd set is rebuilt per wait.
        Poll {
            registered: Vec<(RawFd, u64, Interest)>,
        },
    }

    pub struct Poller {
        backend: Backend,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            // SAFETY: no pointer arguments.
            let created = sys::check(unsafe {
                sys::syscall6(sys::nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0)
            });
            let backend = match created {
                Ok(epfd) => Backend::Epoll {
                    epfd: epfd as RawFd,
                    buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
                },
                Err(_) => Backend::Poll {
                    registered: Vec::new(),
                },
            };
            Ok(Self { backend })
        }

        pub fn backend_name(&self) -> &'static str {
            match &self.backend {
                Backend::Epoll { .. } => "epoll",
                Backend::Poll { .. } => "ppoll",
            }
        }

        fn ctl(epfd: RawFd, op: usize, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
            let ptr = event
                .as_ref()
                .map_or(std::ptr::null(), |e| e as *const EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live
            // EpollEvent for the duration of the call.
            sys::check(unsafe {
                sys::syscall6(
                    sys::nr::EPOLL_CTL,
                    epfd as usize,
                    op,
                    fd as usize,
                    ptr as usize,
                    0,
                    0,
                )
            })?;
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match &mut self.backend {
                Backend::Epoll { epfd, .. } => Self::ctl(
                    *epfd,
                    EPOLL_CTL_ADD,
                    fd,
                    Some(EpollEvent {
                        events: interest_to_epoll(interest),
                        data: token,
                    }),
                ),
                Backend::Poll { registered } => {
                    registered.push((fd, token, interest));
                    Ok(())
                }
            }
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match &mut self.backend {
                Backend::Epoll { epfd, .. } => Self::ctl(
                    *epfd,
                    EPOLL_CTL_MOD,
                    fd,
                    Some(EpollEvent {
                        events: interest_to_epoll(interest),
                        data: token,
                    }),
                ),
                Backend::Poll { registered } => {
                    for entry in registered.iter_mut() {
                        if entry.0 == fd {
                            entry.1 = token;
                            entry.2 = interest;
                            return Ok(());
                        }
                    }
                    Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
                }
            }
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match &mut self.backend {
                Backend::Epoll { epfd, .. } => Self::ctl(*epfd, EPOLL_CTL_DEL, fd, None),
                Backend::Poll { registered } => {
                    registered.retain(|entry| entry.0 != fd);
                    Ok(())
                }
            }
        }

        /// Blocks until readiness or `timeout`, appending events.
        /// `None` blocks indefinitely. EINTR is treated as an empty
        /// wake, never an error.
        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            match &mut self.backend {
                Backend::Epoll { epfd, buf } => {
                    let timeout_ms = timeout.map_or(-1i32, |d| {
                        i32::try_from(d.as_millis()).unwrap_or(i32::MAX).max(0)
                    });
                    // SAFETY: `buf` outlives the call; maxevents bounds
                    // what the kernel writes; sigmask is null.
                    let got = sys::check(unsafe {
                        sys::syscall6(
                            sys::nr::EPOLL_PWAIT,
                            *epfd as usize,
                            buf.as_mut_ptr() as usize,
                            buf.len(),
                            timeout_ms as isize as usize,
                            0,
                            0,
                        )
                    });
                    let got = match got {
                        Ok(n) => n,
                        Err(err) if err.kind() == io::ErrorKind::Interrupted => 0,
                        Err(err) => return Err(err),
                    };
                    for raw in &buf[..got] {
                        let flags = raw.events;
                        events.push(Event {
                            token: raw.data,
                            readable: flags & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                            writable: flags & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                        });
                    }
                    Ok(())
                }
                Backend::Poll { registered } => {
                    let mut fds: Vec<PollFd> = registered
                        .iter()
                        .map(|&(fd, _, interest)| PollFd {
                            fd,
                            events: if interest.readable { POLLIN } else { 0 }
                                | if interest.writable { POLLOUT } else { 0 },
                            revents: 0,
                        })
                        .collect();
                    let ts = timeout.map(|d| Timespec {
                        tv_sec: d.as_secs() as i64,
                        tv_nsec: i64::from(d.subsec_nanos()),
                    });
                    let ts_ptr = ts
                        .as_ref()
                        .map_or(std::ptr::null(), |t| t as *const Timespec);
                    // SAFETY: `fds` and `ts` outlive the call; sigmask
                    // is null so sigsetsize is ignored.
                    let got = sys::check(unsafe {
                        sys::syscall6(
                            sys::nr::PPOLL,
                            fds.as_mut_ptr() as usize,
                            fds.len(),
                            ts_ptr as usize,
                            0,
                            0,
                            0,
                        )
                    });
                    match got {
                        Ok(_) => {}
                        Err(err) if err.kind() == io::ErrorKind::Interrupted => return Ok(()),
                        Err(err) => return Err(err),
                    }
                    for (raw, &(_, token, _)) in fds.iter().zip(registered.iter()) {
                        if raw.revents == 0 {
                            continue;
                        }
                        events.push(Event {
                            token,
                            readable: raw.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                            writable: raw.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                        });
                    }
                    Ok(())
                }
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            if let Backend::Epoll { epfd, .. } = &self.backend {
                // SAFETY: closing an fd we own; no pointers.
                let _ = unsafe { sys::syscall6(sys::nr::CLOSE, *epfd as usize, 0, 0, 0, 0, 0) };
            }
        }
    }

    const F_GETFL: usize = 3;
    const F_SETFL: usize = 4;
    const O_NONBLOCK: usize = 0o4000;

    /// Puts `fd` into nonblocking mode (for pipes, which have no
    /// `set_nonblocking` in std).
    pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
        // SAFETY: fcntl with integer arguments only.
        let flags =
            sys::check(unsafe { sys::syscall6(sys::nr::FCNTL, fd as usize, F_GETFL, 0, 0, 0, 0) })?;
        // SAFETY: as above.
        sys::check(unsafe {
            sys::syscall6(
                sys::nr::FCNTL,
                fd as usize,
                F_SETFL,
                flags | O_NONBLOCK,
                0,
                0,
                0,
            )
        })?;
        Ok(())
    }

    #[repr(C)]
    struct Rlimit64 {
        rlim_cur: u64,
        rlim_max: u64,
    }

    const RLIMIT_NOFILE: usize = 7;

    /// Tries to raise the fd limit to at least `target` (raising the
    /// hard limit too when privileged). Returns the resulting soft
    /// limit — callers size their connection budgets off it.
    pub fn raise_nofile(target: u64) -> io::Result<u64> {
        let mut current = Rlimit64 {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: null new-limit pointer reads the current limit into
        // `current`, which outlives the call.
        sys::check(unsafe {
            sys::syscall6(
                sys::nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                0,
                &mut current as *mut Rlimit64 as usize,
                0,
                0,
            )
        })?;
        if current.rlim_cur >= target {
            return Ok(current.rlim_cur);
        }
        // Privileged processes may raise the hard limit outright.
        let want = Rlimit64 {
            rlim_cur: target,
            rlim_max: target.max(current.rlim_max),
        };
        // SAFETY: both limit structs outlive the call.
        let raised = sys::check(unsafe {
            sys::syscall6(
                sys::nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &want as *const Rlimit64 as usize,
                0,
                0,
                0,
            )
        });
        if raised.is_ok() {
            return Ok(target);
        }
        // Unprivileged: the hard limit is the ceiling.
        let capped = Rlimit64 {
            rlim_cur: current.rlim_max.min(target),
            rlim_max: current.rlim_max,
        };
        // SAFETY: as above.
        sys::check(unsafe {
            sys::syscall6(
                sys::nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &capped as *const Rlimit64 as usize,
                0,
                0,
                0,
            )
        })?;
        Ok(capped.rlim_cur)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    //! Stub for targets without the syscall shims: `Poller::new` fails
    //! and the server falls back to the blocking driver.
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    // `RawFd` only exists on unix; elsewhere use an integer wide
    // enough for any platform's descriptor so the API shape holds.
    #[cfg(unix)]
    use std::os::fd::RawFd;
    #[cfg(not(unix))]
    pub type RawFd = i64;

    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness polling requires linux x86_64/aarch64",
            ))
        }

        pub fn backend_name(&self) -> &'static str {
            "unsupported"
        }

        pub fn register(&mut self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn reregister(
            &mut self,
            _fd: RawFd,
            _token: u64,
            _interest: Interest,
        ) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn deregister(&mut self, _fd: RawFd) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn wait(
            &mut self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
    }

    pub fn set_nonblocking(_fd: RawFd) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "no fcntl shim"))
    }

    pub fn raise_nofile(_target: u64) -> io::Result<u64> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "no prlimit shim",
        ))
    }
}

pub use imp::{raise_nofile, set_nonblocking, Poller};

use std::io::Write;

/// Wakes a [`Poller`] parked in `wait` from another thread: one end of
/// a pipe is registered with the poller, the other is written here.
/// The `pending` flag coalesces bursts — between two loop drains, at
/// most one byte sits in the pipe, so writes never block.
pub struct Waker {
    writer: std::io::PipeWriter,
    pending: AtomicBool,
}

impl Waker {
    /// Returns the waker plus the read end the event loop registers
    /// (already nonblocking) and drains.
    pub fn new() -> io::Result<(Waker, std::io::PipeReader)> {
        let (reader, writer) = std::io::pipe()?;
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            set_nonblocking(reader.as_raw_fd())?;
        }
        Ok((
            Waker {
                writer,
                pending: AtomicBool::new(false),
            },
            reader,
        ))
    }

    /// Clears the coalescing flag; the loop calls this right before
    /// draining the pipe so a wake racing the drain writes a new byte.
    pub fn begin_drain(&self) {
        self.pending.store(false, Ordering::SeqCst);
    }
}

impl runtime::Wake for Waker {
    fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            // A full pipe (impossible under coalescing) or a dead
            // reader (loop exiting) are both fine to ignore.
            let _ = (&self.writer).write(&[1u8]);
        }
    }
}

/// Readiness + waker smoke tests (Linux-only; the stub fails `new`).
#[cfg(all(
    test,
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod tests {
    use super::*;
    use runtime::Wake;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn epoll_backend_is_selected_on_linux() {
        let poller = Poller::new().expect("poller");
        assert_eq!(poller.backend_name(), "epoll");
    }

    #[test]
    fn readiness_surfaces_on_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        // Nothing to read yet: a short wait times out empty.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let mut server = server;
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);

        // Write interest on an empty socket buffer fires immediately.
        events.clear();
        poller
            .reregister(server.as_raw_fd(), 7, Interest::READ_WRITE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.writable));

        poller.deregister(server.as_raw_fd()).unwrap();
        events.clear();
        client.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "deregistered fd must stay silent");
    }

    #[test]
    fn waker_unparks_a_waiting_poller_and_coalesces() {
        let (waker, reader) = Waker::new().expect("waker");
        let mut poller = Poller::new().unwrap();
        poller
            .register(reader.as_raw_fd(), 1, Interest::READ)
            .unwrap();

        let waker = std::sync::Arc::new(waker);
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            // A storm of wakes from another thread…
            for _ in 0..100 {
                remote.wake();
            }
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        handle.join().unwrap();

        // …collapses to at most one byte in the pipe.
        waker.begin_drain();
        let mut drained = [0u8; 16];
        let mut reader = reader;
        let n = reader.read(&mut drained).unwrap();
        assert_eq!(n, 1, "coalescing must keep the pipe at one byte");
    }

    #[test]
    fn raise_nofile_reports_a_usable_budget() {
        let limit = raise_nofile(1024).expect("query/raise RLIMIT_NOFILE");
        assert!(limit >= 256, "implausibly low fd budget: {limit}");
    }
}
