//! A hand-rolled, sans-io HTTP/1.1 request parser.
//!
//! The workspace has no HTTP dependency, and the served protocol needs
//! only a small, strict slice of HTTP/1.1: `Content-Length`-framed
//! requests with percent-encoded targets, keep-alive, and pipelining.
//! [`RequestParser`] is a pure byte-buffer machine — the caller pushes
//! whatever the socket produced and asks for complete requests — which
//! makes it directly property-testable without sockets (see
//! `tests/http_proptest.rs`): truncated requests park as `Ok(None)`,
//! malformed ones fail as 400, oversized ones as 413, and pipelined
//! bytes simply stay buffered for the next call.
//!
//! Strictness is a feature: anything ambiguous (bad escapes, non-UTF-8
//! heads, chunked framing, missing version) is rejected rather than
//! guessed at, so the server can never be driven into an undefined
//! framing state by a malicious client.

/// Byte budgets a connection must stay inside; exceeding either is a
/// 413 and closes the connection (framing can't be trusted past it).
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Request line + headers, including the blank line.
    pub max_head_bytes: usize,
    /// Declared `Content-Length` ceiling.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parse rejection, mapped onto the response status the connection
/// handler must send before hanging up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid request → 400.
    BadRequest(&'static str),
    /// Head or declared body over the [`Limits`] → 413.
    TooLarge(&'static str),
}

impl HttpError {
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge(_) => 413,
        }
    }

    pub fn reason(&self) -> &'static str {
        match self {
            HttpError::BadRequest(msg) | HttpError::TooLarge(msg) => msg,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status(), self.reason())
    }
}

impl std::error::Error for HttpError {}

/// One fully-received request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    /// Percent-decoded path, query stripped (`/recommend/3`).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// HTTP/1.1 defaults to keep-alive; `Connection: close` clears it.
    pub keep_alive: bool,
}

impl Request {
    /// First value for `name` in the query string.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Incremental parser over a growing byte buffer. Push socket reads
/// in with [`RequestParser::push`], pull complete requests out with
/// [`RequestParser::next_request`]; leftover bytes (pipelining) stay
/// buffered.
pub struct RequestParser {
    buf: Vec<u8>,
    limits: Limits,
}

impl RequestParser {
    pub fn new(limits: Limits) -> Self {
        Self {
            buf: Vec::new(),
            limits,
        }
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete request —
    /// nonzero after `Ok(None)` means a request is in flight.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to cut one complete request off the front of the buffer.
    ///
    /// `Ok(None)` means the bytes so far are a valid *prefix* — read
    /// more. An `Err` poisons the connection: framing past a rejected
    /// head is unknowable, so the caller must respond and close.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head_end) = find_head_end(&self.buf, self.limits.max_head_bytes) else {
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(HttpError::TooLarge("request head over limit"));
            }
            return Ok(None);
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| HttpError::BadRequest("request head is not UTF-8"))?;

        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let (method, target) = parse_request_line(request_line)?;

        let mut content_length = 0usize;
        let mut keep_alive = true;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(HttpError::BadRequest("header without colon"))?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::BadRequest("malformed header name"));
            }
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest("unparseable content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // Only Content-Length framing is spoken here.
                return Err(HttpError::BadRequest("transfer-encoding unsupported"));
            }
        }
        if content_length > self.limits.max_body_bytes {
            return Err(HttpError::TooLarge("declared body over limit"));
        }

        let body_start = head_end + 4;
        let body_end = body_start + content_length;
        if self.buf.len() < body_end {
            return Ok(None);
        }

        // The target is only decoded once the message is known to be
        // complete, so a bad escape in a truncated request still
        // parks rather than racing the missing bytes.
        let (path, query) = parse_target(target)?;
        let method = method.to_string();
        let body = self.buf[body_start..body_end].to_vec();
        self.buf.drain(..body_end);
        Ok(Some(Request {
            method,
            path,
            query,
            body,
            keep_alive,
        }))
    }
}

/// Index of `\r\n\r\n` within the head budget, if present.
fn find_head_end(buf: &[u8], max_head: usize) -> Option<usize> {
    let window = buf.len().min(max_head + 4);
    buf[..window]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .filter(|&i| i <= max_head)
}

fn parse_request_line(line: &str) -> Result<(&str, &str), HttpError> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest("target must be absolute"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }
    Ok((method, target))
}

/// Splits `target` into a decoded path and decoded query pairs.
fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Ok((path, query))
}

/// Strict `%XX` decoding; rejects truncated or non-hex escapes and
/// escapes that do not decode to UTF-8.
pub fn percent_decode(s: &str) -> Result<String, HttpError> {
    if !s.contains('%') {
        return Ok(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let (Some(&hi), Some(&lo)) = (bytes.get(i + 1), bytes.get(i + 2)) else {
                return Err(HttpError::BadRequest("truncated percent escape"));
            };
            let hex = |b: u8| -> Option<u8> {
                match b {
                    b'0'..=b'9' => Some(b - b'0'),
                    b'a'..=b'f' => Some(b - b'a' + 10),
                    b'A'..=b'F' => Some(b - b'A' + 10),
                    _ => None,
                }
            };
            let (Some(hi), Some(lo)) = (hex(hi), hex(lo)) else {
                return Err(HttpError::BadRequest("non-hex percent escape"));
            };
            out.push(hi * 16 + lo);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("escape decodes to invalid UTF-8"))
}

/// Canonical reason phrase for every status the server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Every status in the served protocol's vocabulary (the access-log
/// validator rejects anything else).
pub const KNOWN_STATUSES: [u16; 7] = [200, 400, 404, 405, 409, 413, 500];

/// Serializes one `Content-Length`-framed JSON response.
pub fn render_response(status: u16, body: &str, close: bool) -> Vec<u8> {
    render_response_with(status, "application/json", body, close)
}

/// Serializes one `Content-Length`-framed response with an explicit
/// content type (Prometheus exposition is `text/plain`).
pub fn render_response_with(status: u16, content_type: &str, body: &str, close: bool) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        status_text(status),
        body.len()
    );
    if close {
        out.push_str("Connection: close\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut p = RequestParser::new(Limits::default());
        p.push(raw);
        p.next_request()
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse_one(b"GET /recommend/7?k=5 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/recommend/7");
        assert_eq!(req.query_param("k"), Some("5"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_a_post_with_body_and_close() {
        let req = parse_one(
            b"POST /feedback HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"abcd");
        assert!(!req.keep_alive);
    }

    #[test]
    fn truncated_request_parks_until_bytes_arrive() {
        let mut p = RequestParser::new(Limits::default());
        p.push(b"POST /feedback HTTP/1.1\r\nContent-Length: 4\r\n\r\nab");
        assert!(p.next_request().unwrap().is_none());
        p.push(b"cd");
        let req = p.next_request().unwrap().unwrap();
        assert_eq!(req.body, b"abcd");
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut p = RequestParser::new(Limits::default());
        p.push(b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/healthz");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/metrics");
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn oversized_head_is_413() {
        let mut p = RequestParser::new(Limits {
            max_head_bytes: 64,
            max_body_bytes: 64,
        });
        p.push(b"GET / HTTP/1.1\r\nX-Pad: ");
        p.push(&[b'a'; 128]);
        assert_eq!(
            p.next_request().unwrap_err().status(),
            413,
            "unterminated oversized head"
        );
    }

    #[test]
    fn oversized_declared_body_is_413_without_reading_it() {
        let err =
            parse_one(b"POST /feedback HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn bad_escapes_and_bad_framing_are_400() {
        for raw in [
            &b"GET /x%ZZ HTTP/1.1\r\n\r\n"[..],
            b"GET /x%2 HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"get /lower HTTP/1.1\r\n\r\n",
            b"GET / HTTP/9.9\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let err = parse_one(raw).expect_err("should reject");
            assert_eq!(err.status(), 400, "{raw:?}");
        }
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("/a%20b").unwrap(), "/a b");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%e2%82%ac").unwrap().contains('€'));
    }
}
